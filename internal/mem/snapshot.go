package mem

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot wire format. The snapshot is the warm-donor shipping
// contract of the fleet subsystem: it captures exactly the state Fork
// adopts from a donor — the WarmKey (geometry) plus every cache's
// resident lines and LRU order — and nothing more. Timing, statistics
// and the in-flight MSHR table are deliberately absent: Fork discards
// all three, so a hierarchy rebuilt from a snapshot forks bit-for-bit
// like the original donor (pinned by TestSnapshotRoundTripForksIdentically).
//
// Layout (little endian):
//
//	magic   [8]byte  "ooosnap1"
//	keyLen  uint32   length of the WarmKey JSON
//	key     []byte   json.Marshal(WarmKey)
//	3x (IL1, DL1, L2):
//	  nWays uint32   len(ways)
//	  ways  []uint64 flat tag array
//	  nLive uint32   len(live)
//	  live  []int32  per-set resident-way counts
//
// The format carries its own geometry (the WarmKey), so ReadSnapshot
// validates everything it needs: array lengths must match the geometry
// and live counts must stay within associativity. A torn or hostile
// snapshot fails loudly instead of producing a corrupt donor.
var snapshotMagic = [8]byte{'o', 'o', 'o', 's', 'n', 'a', 'p', '1'}

// WriteSnapshot serialises the hierarchy's warm state to w: the
// donor-shipping half of the fleet's snapshot exchange. Only the
// warm-relevant state travels (see the format comment); use it on
// quiescent donors (core.WarmDonor output), where that state is the
// whole story.
func (h *Hierarchy) WriteSnapshot(w io.Writer) error {
	keyJSON, err := json.Marshal(h.warm)
	if err != nil {
		return fmt.Errorf("mem: snapshot: marshal warm key: %w", err)
	}
	// Assemble in memory first so a mid-write network failure never
	// leaves a half-serialised donor observable as a short read with a
	// valid prefix.
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(len(keyJSON)))
	buf.Write(keyJSON)
	for _, c := range []*Cache{h.il1, h.dl1, h.l2} {
		binary.Write(&buf, binary.LittleEndian, uint32(len(c.ways)))
		binary.Write(&buf, binary.LittleEndian, c.ways)
		binary.Write(&buf, binary.LittleEndian, uint32(len(c.live)))
		binary.Write(&buf, binary.LittleEndian, c.live)
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// ReadSnapshot rebuilds a donor hierarchy from a snapshot produced by
// WriteSnapshot. The result has the snapshot's WarmKey and cache
// contents, placeholder timing (like WarmKey.Donor), zero statistics
// and an empty in-flight tracker — exactly a freshly warmed donor, so
// Fork(cfg) of the restored hierarchy is bit-identical to Fork(cfg) of
// the original.
func ReadSnapshot(r io.Reader) (*Hierarchy, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("mem: snapshot: read magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("mem: snapshot: bad magic %q", magic[:])
	}
	var keyLen uint32
	if err := binary.Read(r, binary.LittleEndian, &keyLen); err != nil {
		return nil, fmt.Errorf("mem: snapshot: read key length: %w", err)
	}
	// The WarmKey JSON is a few hundred bytes; anything larger is not a
	// snapshot we wrote.
	if keyLen > 1<<16 {
		return nil, fmt.Errorf("mem: snapshot: warm key length %d implausible", keyLen)
	}
	keyJSON := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyJSON); err != nil {
		return nil, fmt.Errorf("mem: snapshot: read warm key: %w", err)
	}
	var key WarmKey
	if err := json.Unmarshal(keyJSON, &key); err != nil {
		return nil, fmt.Errorf("mem: snapshot: decode warm key: %w", err)
	}
	// Donor() validates the geometry, so array bounds below are checked
	// against a vetted shape, never attacker-chosen sizes.
	h, err := key.Donor()
	if err != nil {
		return nil, fmt.Errorf("mem: snapshot: %w", err)
	}
	for _, lvl := range []struct {
		name string
		c    *Cache
	}{{"IL1", h.il1}, {"DL1", h.dl1}, {"L2", h.l2}} {
		if err := lvl.c.readSnapshotState(r); err != nil {
			return nil, fmt.Errorf("mem: snapshot: %s: %w", lvl.name, err)
		}
	}
	return h, nil
}

// readSnapshotState fills c's ways/live arrays from r, enforcing that
// the serialised lengths match c's geometry and that live counts stay
// within associativity.
func (c *Cache) readSnapshotState(r io.Reader) error {
	var nWays uint32
	if err := binary.Read(r, binary.LittleEndian, &nWays); err != nil {
		return fmt.Errorf("read ways length: %w", err)
	}
	if int(nWays) != len(c.ways) {
		return fmt.Errorf("ways length %d does not match geometry (want %d)", nWays, len(c.ways))
	}
	if err := binary.Read(r, binary.LittleEndian, c.ways); err != nil {
		return fmt.Errorf("read ways: %w", err)
	}
	var nLive uint32
	if err := binary.Read(r, binary.LittleEndian, &nLive); err != nil {
		return fmt.Errorf("read live length: %w", err)
	}
	if int(nLive) != len(c.live) {
		return fmt.Errorf("live length %d does not match geometry (want %d)", nLive, len(c.live))
	}
	if err := binary.Read(r, binary.LittleEndian, c.live); err != nil {
		return fmt.Errorf("read live: %w", err)
	}
	for si, n := range c.live {
		if n < 0 || int(n) > c.assoc {
			return fmt.Errorf("set %d live count %d outside [0,%d]", si, n, c.assoc)
		}
	}
	return nil
}
