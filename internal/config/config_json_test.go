package config

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCanonicalJSONGolden pins the canonical encoding of Default().
// Every cache fingerprint hashes this encoding, so any drift — a
// renamed field, a changed commit-mode spelling, a new field — must
// show up as a failing diff and a deliberate golden update (plus a
// sim.FingerprintVersion bump when the drift changes meaning).
func TestCanonicalJSONGolden(t *testing.T) {
	got, err := Default().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "default_canonical.json")
	if *update {
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(append(got, '\n'), want) {
		t.Errorf("canonical encoding drifted from golden file:\n got: %s\nwant: %s", got, want)
	}
}

// TestConfigJSONRoundTrip: encode -> ParseJSON must reproduce the
// struct exactly for both commit modes and survive re-encoding
// byte-identically.
func TestConfigJSONRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		Default(),
		BaselineSized(128),
		CheckpointDefault(64, 1024),
		AdaptiveDefault(64, 1024),
		OracleDefault(),
	} {
		data, err := cfg.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Summary(), err)
		}
		if back != cfg {
			t.Errorf("%s: round trip changed the config:\n got %+v\nwant %+v", cfg.Summary(), back, cfg)
		}
		again, err := back.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: re-encoding not byte-identical", cfg.Summary())
		}
	}
}

// TestParseJSONRejects covers the strictness guarantees: unknown
// fields, bad commit modes, and invalid configurations all fail.
func TestParseJSONRejects(t *testing.T) {
	valid, err := Default().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(valid, &m); err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(map[string]any)) []byte {
		var c map[string]any
		if err := json.Unmarshal(valid, &c); err != nil {
			t.Fatal(err)
		}
		f(c)
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	for name, data := range map[string][]byte{
		"unknown field": mutate(func(c map[string]any) { c["TurboBoost"] = true }),
		"bad mode":      mutate(func(c map[string]any) { c["Commit"] = "warp" }),
		"numeric mode":  mutate(func(c map[string]any) { c["Commit"] = 1 }),
		"invalid cfg":   mutate(func(c map[string]any) { c["FetchWidth"] = 0 }),
		"not json":      []byte("fetch=4"),
	} {
		if _, err := ParseJSON(data); err == nil {
			t.Errorf("%s: ParseJSON accepted %s", name, data)
		}
	}
}

// TestCanonicalJSONRejectsInvalid: an invalid configuration has no
// canonical form.
func TestCanonicalJSONRejectsInvalid(t *testing.T) {
	if _, err := (Config{}).CanonicalJSON(); err == nil {
		t.Error("zero config produced a canonical encoding")
	}
	bad := Default()
	bad.Commit = CommitMode("warp")
	if _, err := json.Marshal(bad); err == nil {
		t.Error("unknown commit mode marshalled")
	}
}
