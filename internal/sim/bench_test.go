package sim

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// figure9Grid builds a reduced figure-9 sweep (the headline COoO grid
// plus the two baselines over three workloads) for scaling benchmarks.
func figure9Grid(insts uint64) []RunSpec {
	n := trace.LenFor(insts)
	traces := []*trace.Trace{
		trace.Stream(n),
		trace.Stencil(n),
		trace.FPMix(n, 42),
	}
	var cfgs []config.Config
	for _, sliq := range []int{512, 1024, 2048} {
		for _, iq := range []int{32, 64, 128} {
			cfgs = append(cfgs, config.CheckpointDefault(iq, sliq))
		}
	}
	cfgs = append(cfgs, config.BaselineSized(128), config.BaselineSized(4096))

	var specs []RunSpec
	for _, cfg := range cfgs {
		for _, tr := range traces {
			specs = append(specs, RunSpec{Name: tr.Name(), Config: cfg, Trace: tr, Insts: insts})
		}
	}
	return specs
}

// BenchmarkFigure9Sweep measures the figure-9 sweep's wall clock per
// worker count; on a multi-core host the 8-worker series demonstrates
// the engine's speedup over Workers=1 (the acceptance target is >= 2x).
func BenchmarkFigure9Sweep(b *testing.B) {
	specs := figure9Grid(20_000)
	for _, workers := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(context.Background(), specs, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
