//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// budgets are skipped under it (the runtime itself allocates).
const raceEnabled = true
