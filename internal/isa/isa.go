// Package isa defines the instruction set architecture used by the
// simulator: operation classes, logical registers, and the static and
// dynamic instruction representations.
//
// The ISA is a small RISC-like machine with 32 integer and 32
// floating-point logical registers, which matches the 32-bit
// per-register-class dependence masks used by the Slow Lane Instruction
// Queuing mechanism (Cristal et al., HPCA 2004, section 3).
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the logical register file sizes per class.
// They are fixed at 32 so that a dependence mask over one class fits in a
// 32-bit word, exactly as the paper's SLIQ dependence-tracking hardware
// assumes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32

	// NumLogical is the total logical register name space. Integer
	// registers occupy [0, NumIntRegs) and floating-point registers
	// occupy [NumIntRegs, NumLogical).
	NumLogical = NumIntRegs + NumFPRegs
)

// Reg names a logical register. The zero integer register (R0) is a normal
// register in this ISA (it is not hard-wired to zero). RegNone marks an
// absent operand.
type Reg int8

// RegNone marks "no register" for instructions without a destination or
// with fewer than two sources.
const RegNone Reg = -1

// IntReg returns the i'th integer logical register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i'th floating-point logical register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// Valid reports whether r names an actual logical register.
func (r Reg) Valid() bool { return r >= 0 && r < NumLogical }

// IsFP reports whether r belongs to the floating-point class.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumLogical }

// String implements fmt.Stringer ("r3", "f7", or "-").
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	case r.Valid():
		return fmt.Sprintf("r%d", int(r))
	default:
		return fmt.Sprintf("reg(%d)", int(r))
	}
}

// Op is an operation class. Operation classes map one-to-one onto the
// functional-unit classes of Table 1 in the paper plus the memory and
// control operations.
type Op uint8

// Operation classes.
const (
	// Nop does nothing; it still occupies pipeline resources.
	Nop Op = iota
	// IntAlu is a single-cycle integer operation (add, logic, compare).
	IntAlu
	// IntMul is a pipelined integer multiply (latency 3, repeat 1).
	IntMul
	// IntDiv is an unpipelined integer divide (latency 20, repeat 20).
	IntDiv
	// FPAlu is a pipelined floating-point operation (latency 2, repeat 1).
	FPAlu
	// Load reads memory into a register.
	Load
	// Store writes a register to memory at commit time.
	Store
	// Branch is a conditional branch, predicted by the branch predictor.
	Branch

	numOps
)

// NumOps is the number of distinct operation classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	Nop:    "nop",
	IntAlu: "ialu",
	IntMul: "imul",
	IntDiv: "idiv",
	FPAlu:  "fpalu",
	Load:   "load",
	Store:  "store",
	Branch: "branch",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the operation accesses data memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// HasDest reports whether the operation class produces a register result.
// Stores, branches and nops do not write a register.
func (o Op) HasDest() bool {
	switch o {
	case IntAlu, IntMul, IntDiv, FPAlu, Load:
		return true
	}
	return false
}

// Inst is one dynamic instruction as produced by a workload generator.
// It is a value type; the pipeline wraps it in its own bookkeeping record.
type Inst struct {
	// Op is the operation class.
	Op Op
	// Dest is the destination logical register, or RegNone.
	Dest Reg
	// Src1 and Src2 are source logical registers, or RegNone. For
	// stores, Src1 is the address base and Src2 is the data register.
	Src1, Src2 Reg
	// Addr is the effective byte address for loads and stores. The
	// generator computes it; the timing model consumes it.
	Addr uint64
	// PC is the instruction address, used by the branch predictor.
	PC uint64
	// Taken is the architecturally correct branch outcome (branches only).
	Taken bool
	// Target is the branch's taken-path target address (branches only).
	// Program-backed workloads set it so the branch-target buffer has a
	// real address to predict; synthetic generators leave it zero, which
	// keeps them on the positional prediction model.
	Target uint64
}

// String renders a short human-readable form, e.g.
// "load f3 <- [0x10040] (r1)".
func (in Inst) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("load %v <- [%#x] (%v)", in.Dest, in.Addr, in.Src1)
	case Store:
		return fmt.Sprintf("store [%#x] <- %v (%v)", in.Addr, in.Src2, in.Src1)
	case Branch:
		t := "nt"
		if in.Taken {
			t = "t"
		}
		return fmt.Sprintf("branch@%#x %v,%v %s", in.PC, in.Src1, in.Src2, t)
	case Nop:
		return "nop"
	default:
		return fmt.Sprintf("%v %v <- %v,%v", in.Op, in.Dest, in.Src1, in.Src2)
	}
}

// Sources appends the valid source registers of in to dst and returns it.
// Using an append-style API avoids allocating in the rename hot path.
func (in Inst) Sources(dst []Reg) []Reg {
	if in.Src1 != RegNone {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != RegNone {
		dst = append(dst, in.Src2)
	}
	return dst
}

// Validate checks structural invariants of the instruction and returns a
// descriptive error for malformed instructions. Generators use it in tests;
// the pipeline assumes instructions are valid.
func (in Inst) Validate() error {
	if int(in.Op) >= NumOps {
		return fmt.Errorf("isa: unknown op %d", in.Op)
	}
	if in.Op.HasDest() {
		if !in.Dest.Valid() {
			return fmt.Errorf("isa: %v requires a destination, got %v", in.Op, in.Dest)
		}
	} else if in.Dest != RegNone {
		return fmt.Errorf("isa: %v must not have a destination, got %v", in.Op, in.Dest)
	}
	for _, s := range [2]Reg{in.Src1, in.Src2} {
		if s != RegNone && !s.Valid() {
			return fmt.Errorf("isa: invalid source register %d", s)
		}
	}
	if in.Op.IsMem() && in.Addr == 0 {
		return fmt.Errorf("isa: %v has zero address", in.Op)
	}
	if in.Op == Load && in.Dest == RegNone {
		return fmt.Errorf("isa: load without destination")
	}
	if in.Op == Store && in.Src2 == RegNone {
		return fmt.Errorf("isa: store without data source")
	}
	return nil
}
