package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

const testInsts = 4_000

// figure7Grid builds a small figure-7-shaped spec list: one occupancy-
// collecting configuration crossed with the suite workloads, plus a
// couple of COoO points, all sharing traces across specs.
func figure7Grid() []RunSpec {
	n := trace.LenFor(testInsts)
	traces := []*trace.Trace{
		trace.Stream(n),
		trace.Stencil(n),
		trace.FPMix(n, 42),
	}
	base := config.BaselineSized(256)
	base.MemoryLatency = 500
	cooo := config.CheckpointDefault(64, 512)

	var specs []RunSpec
	for _, cfg := range []config.Config{base, cooo} {
		for _, tr := range traces {
			specs = append(specs, RunSpec{
				Name:             tr.Name(),
				Config:           cfg,
				Trace:            tr,
				Insts:            testInsts,
				CollectOccupancy: true,
			})
		}
	}
	return specs
}

// TestSweepDeterminism is the engine's core contract: the same specs
// produce byte-identical results regardless of the worker count.
func TestSweepDeterminism(t *testing.T) {
	specs := figure7Grid()
	serial, err := Sweep(context.Background(), specs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), specs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("Workers=1 and Workers=8 results differ:\n%s\n---\n%s", a, b)
	}
}

// TestSweepSharedTraceConcurrency runs many CPUs over one shared trace
// at full parallelism; the race detector (CI runs go test -race)
// verifies the trace really is consumed read-only.
func TestSweepSharedTraceConcurrency(t *testing.T) {
	n := trace.LenFor(testInsts)
	tr := trace.FPMix(n, 7)
	var specs []RunSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, RunSpec{
			Name:   tr.Name(),
			Config: config.CheckpointDefault(64, 512),
			Trace:  tr,
			Insts:  testInsts,
		})
	}
	results, err := Sweep(context.Background(), specs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Committed != results[0].Committed || r.Cycles != results[0].Cycles {
			t.Errorf("run %d diverged on the shared trace: %v vs %v", i, r, results[0])
		}
	}
}

// TestSweepOrder checks results[i] corresponds to specs[i] even when
// completion order scrambles under parallelism: each spec gets a
// distinct instruction budget that must come back in its slot.
func TestSweepOrder(t *testing.T) {
	n := trace.LenFor(testInsts)
	tr := trace.Stream(n)
	budgets := []uint64{1000, 2000, 3000, 4000, 1500, 2500}
	var specs []RunSpec
	for _, b := range budgets {
		specs = append(specs, RunSpec{Name: tr.Name(), Config: config.BaselineSized(128), Trace: tr, Insts: b})
	}
	results, err := Sweep(context.Background(), specs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The core may overshoot the budget by up to one commit group, so
	// match each slot to its budget with a small tolerance.
	for i, b := range budgets {
		got := results[i].Committed
		if got < b || got > b+16 {
			t.Errorf("slot %d: committed %d, want ~%d", i, got, b)
		}
	}
}

// TestSweepErrorPropagation checks a failing spec surfaces as a labelled
// error (no panic) and poisons the whole sweep.
func TestSweepErrorPropagation(t *testing.T) {
	n := trace.LenFor(testInsts)
	tr := trace.Stream(n)
	specs := []RunSpec{
		{Name: "good", Config: config.BaselineSized(128), Trace: tr, Insts: 1000},
		{Name: "bad", Config: config.Config{}, Trace: tr, Insts: 1000},
	}
	_, err := Sweep(context.Background(), specs, Options{Workers: 2})
	if err == nil {
		t.Fatal("invalid configuration did not fail the sweep")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not name the failing spec", err)
	}
}

// TestRunRecoversPanics checks simulator panics become errors: a worker
// pool must survive one bad point.
func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(RunSpec{Name: "nil-trace", Config: config.BaselineSized(128)})
	if err == nil {
		t.Fatal("nil trace must produce an error")
	}
}

// TestSweepCancellation checks a cancelled context stops the sweep with
// the context's error.
func TestSweepCancellation(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := trace.LenFor(testInsts)
	tr := trace.Stream(n)
	specs := []RunSpec{{Name: "x", Config: config.BaselineSized(128), Trace: tr, Insts: 1000}}
	_, err := Sweep(cctx, specs, Options{Workers: 2})
	if err == nil {
		t.Fatal("cancelled context did not stop the sweep")
	}
}

// TestSweepProgressAndOnResult checks the callbacks fire once per run
// and that Progress counts completions monotonically up to the total.
func TestSweepProgressAndOnResult(t *testing.T) {
	specs := figure7Grid()
	var lines, records, lastDone int
	_, err := Sweep(context.Background(), specs, Options{
		Workers: 4,
		Progress: func(done, total int, line string) {
			lines++
			if total != len(specs) {
				t.Errorf("progress total %d, want %d", total, len(specs))
			}
			if done != lastDone+1 {
				t.Errorf("progress done %d after %d, want monotone +1", done, lastDone)
			}
			lastDone = done
		},
		OnResult: func(RunSpec, stats.Results) { records++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != len(specs) || records != len(specs) {
		t.Errorf("callbacks fired %d/%d times, want %d each", lines, records, len(specs))
	}
	if lastDone != len(specs) {
		t.Errorf("final done count %d, want %d", lastDone, len(specs))
	}
}
