package trace

import "repro/internal/isa"

// iterSource emits one loop iteration of a kernel per call. Kernel
// instances own disjoint register windows and address regions so they
// can be interleaved without aliasing.
type iterSource interface {
	emitIter(b *builder)
	kernelName() string
}

// elem is the element size in bytes of every array (double precision).
const elem = 8

// constFP is a shared loop-invariant register: no kernel ever writes it,
// so reads are always ready (coefficient/constant operands).
var constFP = isa.FPReg(isa.NumFPRegs - 1)

// region returns the base address of the i'th kernel address region
// (256 MB apart, never zero).
func region(i int) uint64 { return uint64(i+1) << 28 }

// ---------------------------------------------------------------------
// Stream: a[i] = b[i]*c[i] + d[i], arrays far larger than L2.
// With stride 1 one load in eight touches a new 64-byte L2 line; with
// stride 8 every load does, so StrideElems dials the L2 miss rate.
// ---------------------------------------------------------------------

type streamKernel struct {
	win    regWindow
	pcBase uint64
	baseA  uint64 // output array
	baseB  uint64
	baseC  uint64
	baseD  uint64
	foot   uint64 // footprint per array, in elements
	stride uint64 // in elements
	unroll int    // elements per loop-back branch
	i      uint64 // current element index
	rng    *prng
}

func newStreamKernel(win regWindow, reg int, pcBase uint64, strideElems int, rng *prng) *streamKernel {
	base := region(reg)
	const footBytes = 8 << 20 // 8 MB per array, 16x the 512 KB L2
	return &streamKernel{
		win:    win,
		pcBase: pcBase,
		baseA:  base,
		baseB:  base + 1*footBytes,
		baseC:  base + 2*footBytes,
		baseD:  base + 3*footBytes,
		foot:   footBytes / elem,
		stride: uint64(strideElems),
		unroll: 128,
		rng:    rng,
	}
}

func (k *streamKernel) kernelName() string { return "stream" }

// emitIter emits one unrolled loop iteration: unroll element bodies
// followed by the index update and the loop-back branch. The long basic
// block mirrors unrolled SPEC2000fp inner loops (see DESIGN.md §4) and
// is what lets the checkpoint-at-branches heuristic form large windows.
func (k *streamKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	for u := 0; u < k.unroll; u++ {
		idx := (k.i * k.stride) % k.foot
		off := idx * elem
		upc := pc + uint64(u)*32
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(0), Src1: w.r(0), Addr: k.baseB + off, PC: upc})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(1), Src1: w.r(0), Addr: k.baseC + off, PC: upc + 4})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(2), Src1: w.f(0), Src2: w.f(1), PC: upc + 8})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(3), Src1: w.r(0), Addr: k.baseD + off, PC: upc + 12})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(4), Src1: w.f(2), Src2: w.f(3), PC: upc + 16})
		// Load-independent coefficient work: the source is the shared
		// loop-invariant register (never written), so these issue
		// immediately (SPECfp loops carry a sizeable fraction of such
		// arithmetic).
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(5), Src1: constFP, Src2: constFP, PC: upc + 20})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(5), Src1: constFP, Src2: constFP, PC: upc + 24})
		b.emit(isa.Inst{Op: isa.Store, Src1: w.r(0), Src2: w.f(4), Dest: isa.RegNone, Addr: k.baseA + off, PC: upc + 28})
		k.i++
	}
	end := pc + uint64(k.unroll)*32
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(0), Src1: w.r(0), Src2: isa.RegNone, PC: end})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(0), Src2: isa.RegNone, PC: end + 4, Taken: true})
}

// ---------------------------------------------------------------------
// Stencil: a[i] = w0*b[i-1] + w1*b[i] + w2*b[i+1]; heavy line reuse, so
// most loads hit while streaming still misses on each new line.
// ---------------------------------------------------------------------

type stencilKernel struct {
	win    regWindow
	pcBase uint64
	baseA  uint64
	baseB  uint64
	baseP  uint64 // next plane, walked at L2-line stride (misses)
	foot   uint64
	unroll int
	i      uint64
}

func newStencilKernel(win regWindow, reg int, pcBase uint64) *stencilKernel {
	base := region(reg)
	const footBytes = 8 << 20
	return &stencilKernel{
		win:    win,
		pcBase: pcBase,
		baseA:  base,
		baseB:  base + footBytes,
		baseP:  base + 2*footBytes,
		foot:   footBytes / elem,
		unroll: 48,
	}
}

func (k *stencilKernel) kernelName() string { return "stencil" }

func (k *stencilKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	for u := 0; u < k.unroll; u++ {
		i := k.i%(k.foot-2) + 1
		off := i * elem
		// The next-plane load streams at unit stride, so roughly one
		// load in eight touches a new L2 line: the moderately
		// memory-bound member of the suite (mgrid-like).
		pOff := (k.i % k.foot) * elem
		upc := pc + uint64(u)*44
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(0), Src1: w.r(0), Addr: k.baseB + off - elem, PC: upc})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(1), Src1: w.r(0), Addr: k.baseB + off, PC: upc + 4})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(2), Src1: w.r(0), Addr: k.baseB + off + elem, PC: upc + 8})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(6), Src1: w.r(0), Addr: k.baseP + pOff, PC: upc + 12})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(3), Src1: w.f(0), Src2: isa.RegNone, PC: upc + 16})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(4), Src1: w.f(1), Src2: isa.RegNone, PC: upc + 20})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(3), Src1: w.f(3), Src2: w.f(4), PC: upc + 24})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(5), Src1: w.f(2), Src2: w.f(6), PC: upc + 28})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(3), Src1: w.f(3), Src2: w.f(5), PC: upc + 32})
		b.emit(isa.Inst{Op: isa.Store, Src1: w.r(0), Src2: w.f(3), Dest: isa.RegNone, Addr: k.baseA + off, PC: upc + 36})
		k.i++
	}
	end := pc + uint64(k.unroll)*44
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(0), Src1: w.r(0), Src2: isa.RegNone, PC: end})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(0), Src2: isa.RegNone, PC: end + 4, Taken: true})
}

// ---------------------------------------------------------------------
// Reduction: two-way unrolled dot product; the accumulator chains limit
// ILP no matter how large the window is.
// ---------------------------------------------------------------------

type reductionKernel struct {
	win    regWindow
	pcBase uint64
	baseA  uint64
	baseB  uint64
	foot   uint64
	unroll int
	i      uint64
}

func newReductionKernel(win regWindow, reg int, pcBase uint64) *reductionKernel {
	base := region(reg)
	const footBytes = 8 << 20
	return &reductionKernel{
		win:    win,
		pcBase: pcBase,
		baseA:  base,
		baseB:  base + footBytes,
		foot:   footBytes / elem,
		unroll: 120,
	}
}

func (k *reductionKernel) kernelName() string { return "reduction" }

func (k *reductionKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	for u := 0; u < k.unroll; u++ {
		i := k.i % k.foot
		off := i * elem
		upc := pc + uint64(u)*32
		// Register-blocked: both loaded values feed two accumulator
		// chains, keeping the load fraction SPECfp-like (~25%).
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(0), Src1: w.r(0), Addr: k.baseA + off, PC: upc})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(1), Src1: w.r(0), Addr: k.baseB + off, PC: upc + 4})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(2), Src1: w.f(0), Src2: w.f(1), PC: upc + 8})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(5), Src1: w.f(5), Src2: w.f(2), PC: upc + 12})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(3), Src1: w.f(0), Src2: w.f(2), PC: upc + 16})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(6), Src1: w.f(6), Src2: w.f(3), PC: upc + 20})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(4), Src1: w.f(1), Src2: w.f(3), PC: upc + 24})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(4), Src1: w.f(4), Src2: w.f(2), PC: upc + 28})
		k.i++
	}
	end := pc + uint64(k.unroll)*32
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(0), Src1: w.r(0), Src2: isa.RegNone, PC: end})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(0), Src2: isa.RegNone, PC: end + 4, Taken: true})
}

// ---------------------------------------------------------------------
// Blocked: cache-blocked matrix-vector product with a 64 KB working set
// that lives in L2 (and mostly in DL1); the high-IPC compute phase.
// ---------------------------------------------------------------------

type blockedKernel struct {
	win    regWindow
	pcBase uint64
	baseM  uint64
	baseX  uint64
	baseY  uint64
	mFoot  uint64 // elements in the matrix block
	vFoot  uint64 // elements in each vector
	unroll int
	i      uint64
}

func newBlockedKernel(win regWindow, reg int, pcBase uint64) *blockedKernel {
	base := region(reg)
	return &blockedKernel{
		win:    win,
		pcBase: pcBase,
		baseM:  base,
		baseX:  base + (64 << 10),
		baseY:  base + (64<<10 + 8<<10),
		mFoot:  (64 << 10) / elem, // 64 KB block
		vFoot:  (8 << 10) / elem,  // 8 KB vectors
		unroll: 64,
	}
}

func (k *blockedKernel) kernelName() string { return "blocked" }

func (k *blockedKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	for u := 0; u < k.unroll; u++ {
		mOff := (k.i % k.mFoot) * elem
		vOff := (k.i % k.vFoot) * elem
		upc := pc + uint64(u)*24
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(0), Src1: w.r(0), Addr: k.baseM + mOff, PC: upc})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(1), Src1: w.r(0), Addr: k.baseX + vOff, PC: upc + 4})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(2), Src1: w.f(0), Src2: w.f(1), PC: upc + 8})
		b.emit(isa.Inst{Op: isa.Load, Dest: w.f(3), Src1: w.r(0), Addr: k.baseY + vOff, PC: upc + 12})
		b.emit(isa.Inst{Op: isa.FPAlu, Dest: w.f(4), Src1: w.f(3), Src2: w.f(2), PC: upc + 16})
		b.emit(isa.Inst{Op: isa.Store, Src1: w.r(0), Src2: w.f(4), Dest: isa.RegNone, Addr: k.baseY + vOff, PC: upc + 20})
		k.i++
	}
	end := pc + uint64(k.unroll)*24
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(0), Src1: w.r(0), Src2: isa.RegNone, PC: end})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(0), Src2: isa.RegNone, PC: end + 4, Taken: true})
}

// ---------------------------------------------------------------------
// PointerChase: serial dependent loads over a random permutation far
// larger than L2; the integer contrast case from the introduction.
// ---------------------------------------------------------------------

type chaseKernel struct {
	win    regWindow
	pcBase uint64
	base   uint64
	nodes  uint64
	cur    uint64 // current node index in the synthetic random walk
	rng    *prng
}

func newChaseKernel(win regWindow, reg int, pcBase uint64, rng *prng) *chaseKernel {
	return &chaseKernel{
		win:    win,
		pcBase: pcBase,
		base:   region(reg),
		nodes:  (32 << 20) / 64, // one node per 64-byte line, 32 MB footprint
		rng:    rng,
	}
}

func (k *chaseKernel) kernelName() string { return "pointerchase" }

func (k *chaseKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	addr := k.base + k.cur*64
	// The next pointer is a deterministic pseudo-random walk; the load's
	// destination register carries the dependence.
	b.emit(isa.Inst{Op: isa.Load, Dest: w.r(1), Src1: w.r(1), Addr: addr, PC: pc})
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(2), Src1: w.r(1), Src2: isa.RegNone, PC: pc + 4})
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(3), Src1: w.r(2), Src2: isa.RegNone, PC: pc + 8})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(2), Src2: isa.RegNone, PC: pc + 12, Taken: true})
	k.cur = k.rng.next() % k.nodes
}

// ---------------------------------------------------------------------
// Cond: a short loop with a data-dependent branch taken with probability
// p, giving the gshare predictor realistic (mostly low) miss rates.
// ---------------------------------------------------------------------

type condKernel struct {
	win    regWindow
	pcBase uint64
	base   uint64
	foot   uint64
	pTaken float64
	// loadDep ties the conditional branch to the loaded value instead
	// of the index chain, so mispredicted branches resolve only after
	// the (DL1-missing, L2-hitting) load returns — on small pseudo-ROBs
	// the branch has already left and a checkpoint rollback is needed.
	loadDep bool
	i       uint64
	rng     *prng
}

func newCondKernel(win regWindow, reg int, pcBase uint64, pTaken float64, loadDep bool, rng *prng) *condKernel {
	foot := uint64(16<<10) / elem // cache-resident
	if loadDep {
		foot = (256 << 10) / elem // L2-resident, DL1-thrashed
	}
	return &condKernel{
		win:     win,
		pcBase:  pcBase,
		base:    region(reg),
		foot:    foot,
		pTaken:  pTaken,
		loadDep: loadDep,
		rng:     rng,
	}
}

func (k *condKernel) kernelName() string { return "cond" }

func (k *condKernel) emitIter(b *builder) {
	w, pc := k.win, k.pcBase
	off := (k.i % k.foot) * elem
	taken := k.rng.float() < k.pTaken
	// The data-dependent branch hangs off the fast index chain, not the
	// load: SPEC2000fp branches resolve quickly ("branch speculation is
	// normally not a problem", section 1) — a branch waiting on an L2
	// miss would put kilocycles of wrong path on every mispredict.
	condSrc := w.r(0)
	if k.loadDep {
		condSrc = w.r(1)
	}
	b.emit(isa.Inst{Op: isa.Load, Dest: w.r(1), Src1: w.r(0), Addr: k.base + off, PC: pc})
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(2), Src1: condSrc, Src2: isa.RegNone, PC: pc + 4})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(2), Src2: isa.RegNone, PC: pc + 8, Taken: taken})
	b.emit(isa.Inst{Op: isa.IntAlu, Dest: w.r(0), Src1: w.r(0), Src2: isa.RegNone, PC: pc + 12})
	b.emit(isa.Inst{Op: isa.Branch, Dest: isa.RegNone, Src1: w.r(0), Src2: isa.RegNone, PC: pc + 16, Taken: true})
	k.i++
}

// fill runs src until the builder holds n instructions, then truncates
// to exactly n.
func fill(b *builder, src iterSource, n int) {
	for b.len() < n {
		src.emitIter(b)
	}
	b.insts = b.insts[:n]
}

// fullWindow is the register window for single-kernel traces.
var fullWindow = regWindow{intBase: 0, intN: isa.NumIntRegs, fpBase: 0, fpN: isa.NumFPRegs}

// Stream generates n instructions of the unit-stride FP triad.
func Stream(n int) *Trace {
	b := newBuilder(n)
	fill(b, newStreamKernel(fullWindow, 0, 0x1000, 1, newPRNG(1)), n)
	return b.trace("stream").withRecipe(Recipe{Kernel: KernelStream, N: n})
}

// StridedStream generates the triad with the given stride in elements;
// stride 8 makes every load touch a new L2 line.
func StridedStream(n, strideElems int) *Trace {
	b := newBuilder(n)
	fill(b, newStreamKernel(fullWindow, 0, 0x1000, strideElems, newPRNG(1)), n)
	return b.trace("stream-strided").withRecipe(Recipe{Kernel: KernelStrided, N: n, Stride: strideElems})
}

// Stencil generates n instructions of the 3-point stencil.
func Stencil(n int) *Trace {
	b := newBuilder(n)
	fill(b, newStencilKernel(fullWindow, 1, 0x2000), n)
	return b.trace("stencil").withRecipe(Recipe{Kernel: KernelStencil, N: n})
}

// Reduction generates n instructions of the unrolled dot product.
func Reduction(n int) *Trace {
	b := newBuilder(n)
	fill(b, newReductionKernel(fullWindow, 2, 0x3000), n)
	return b.trace("reduction").withRecipe(Recipe{Kernel: KernelReduction, N: n})
}

// Blocked generates n instructions of the cache-blocked matrix-vector
// product.
func Blocked(n int) *Trace {
	b := newBuilder(n)
	fill(b, newBlockedKernel(fullWindow, 3, 0x4000), n)
	return b.trace("blocked").withRecipe(Recipe{Kernel: KernelBlocked, N: n})
}

// PointerChase generates n instructions of serial dependent misses.
func PointerChase(n int) *Trace {
	b := newBuilder(n)
	fill(b, newChaseKernel(fullWindow, 4, 0x5000, newPRNG(7)), n)
	return b.trace("pointerchase").withRecipe(Recipe{Kernel: KernelPointerChase, N: n})
}
