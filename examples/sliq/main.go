// Sliq demonstrates Slow Lane Instruction Queuing: with a tiny issue
// queue, performance collapses unless long-latency dependants are moved
// to the slow lane — and the slow lane can be genuinely slow (the wake
// delay barely matters).
//
//	go run ./examples/sliq
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	const insts = 120_000
	workload := trace.FPMix(insts+30_000, 3)

	fmt.Println("A 32-entry issue queue with and without a slow lane (1000-cycle memory)")
	for _, sliq := range []int{0, 256, 512, 1024, 2048} {
		cfg := config.CheckpointDefault(32, sliq)
		cpu, err := core.New(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		res := cpu.Run(core.RunOptions{MaxInsts: insts})
		label := fmt.Sprintf("SLIQ=%d", sliq)
		if sliq == 0 {
			label = "no SLIQ"
		}
		fmt.Printf("  %-10s IPC=%.3f  moved=%-6d woken=%-6d in-flight=%.0f\n",
			label, res.IPC(), res.SLIQMoved, res.SLIQWoken, res.MeanInflight)
	}

	fmt.Println("\nWake (re-insertion) delay sensitivity at SLIQ=1024 (paper, Figure 10)")
	for _, delay := range []int{1, 4, 8, 12} {
		cfg := config.CheckpointDefault(64, 1024)
		cfg.SLIQWakeDelay = delay
		cpu, err := core.New(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		res := cpu.Run(core.RunOptions{MaxInsts: insts})
		fmt.Printf("  delay=%-2d cycles  IPC=%.3f\n", delay, res.IPC())
	}
	fmt.Println("\nThe slow lane needs no wakeup CAM and tolerates a 12-cycle pump")
	fmt.Println("start-up, so it can be built as plain RAM at 2048 entries.")
}
