package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// policyDefaultConfig returns the canonical configuration of a
// registered commit policy (checkpoint-family sizes kept small for test
// speed).
func policyDefaultConfig(t *testing.T, m config.CommitMode) config.Config {
	t.Helper()
	switch m {
	case config.CommitROB:
		return config.BaselineSized(128)
	case config.CommitCheckpoint:
		return config.CheckpointDefault(64, 512)
	case config.CommitAdaptive:
		return config.AdaptiveDefault(64, 512)
	case config.CommitOracle:
		return config.OracleDefault()
	}
	t.Fatalf("no default config for commit policy %q", m)
	return config.Config{}
}

// TestCommitPolicyRegistriesAgree cross-checks the two halves of the
// policy registry: every policy config validates must be constructible
// by core, and every core factory must be validatable by config. A CPU
// is built and briefly run for each to prove the factory wiring.
func TestCommitPolicyRegistriesAgree(t *testing.T) {
	coreModes := map[config.CommitMode]bool{}
	for _, m := range RegisteredCommitPolicies() {
		coreModes[m] = true
	}
	infos := config.CommitPolicies()
	if len(infos) != len(coreModes) {
		t.Errorf("config registers %d policies, core %d", len(infos), len(coreModes))
	}
	tr := trace.FPMix(trace.LenFor(5000), 42)
	for _, info := range infos {
		if !coreModes[info.Mode] {
			t.Errorf("policy %q registered in config but not in core", info.Mode)
			continue
		}
		cpu, err := New(policyDefaultConfig(t, info.Mode), tr)
		if err != nil {
			t.Errorf("%s: %v", info.Mode, err)
			continue
		}
		if res := cpu.Run(RunOptions{MaxInsts: 5000}); res.Committed < 5000 {
			t.Errorf("%s: committed %d < 5000 (%s)", info.Mode, res.Committed, cpu.debugState())
		}
	}
}

// TestPolicyDeterminism pins bit-equal reruns for the two new policies
// (the established ones are covered by TestDeterminism and the golden).
func TestPolicyDeterminism(t *testing.T) {
	tr := rollbackHeavyTrace(90000)
	for _, m := range []config.CommitMode{config.CommitAdaptive, config.CommitOracle} {
		cfg := policyDefaultConfig(t, m)
		a := mustRun(t, cfg, tr, 40000)
		b := mustRun(t, cfg, tr, 40000)
		if !a.Equal(b) {
			t.Errorf("%s: reruns diverged:\n%+v\nvs\n%+v", m, a, b)
		}
	}
}

// TestOracleIsUpperBound: the unbounded window must dominate every
// realisable baseline on a memory-bound workload, and must sustain a
// window no fixed ROB of the compared sizes could hold.
func TestOracleIsUpperBound(t *testing.T) {
	tr := trace.StridedStream(120000, 8)
	oracle := mustRun(t, config.OracleDefault(), tr, 60000)
	small := mustRun(t, config.BaselineSized(128), tr, 60000)
	big := mustRun(t, config.BaselineSized(4096), tr, 60000)
	if oracle.IPC() < small.IPC() {
		t.Errorf("oracle IPC %.3f below baseline-128 %.3f", oracle.IPC(), small.IPC())
	}
	if oracle.IPC() < big.IPC()*0.99 {
		t.Errorf("oracle IPC %.3f below baseline-4096 %.3f", oracle.IPC(), big.IPC())
	}
	if oracle.MeanInflight <= small.MeanInflight {
		t.Errorf("oracle window (%.0f) should dwarf a 128-entry ROB (%.0f)",
			oracle.MeanInflight, small.MeanInflight)
	}
	if oracle.Policy["oracle.max_retire_burst"] == 0 {
		t.Error("oracle retire-burst counter missing")
	}
}

// TestOracleOccupancyNotClamped: the occupancy histogram must be sized
// so the unbounded window never clips into the top bucket — issued
// branches hold no register or LSQ slot, so only the trace length
// bounds correct-path occupancy.
func TestOracleOccupancyNotClamped(t *testing.T) {
	tr := trace.StridedStream(90000, 8)
	cpu, err := New(config.OracleDefault(), tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 50000, CollectOccupancy: true})
	if res.Occ == nil {
		t.Fatal("occupancy not collected")
	}
	if res.Occ.Max() != res.MaxInflight {
		t.Fatalf("histogram clamped: occ max %d vs true max %d", res.Occ.Max(), res.MaxInflight)
	}
}

// TestOracleRecoversMispredicts: tail squash on the unbounded window
// must work exactly like the ROB walk.
func TestOracleRecoversMispredicts(t *testing.T) {
	tr := rollbackHeavyTrace(120000)
	res := mustRun(t, config.OracleDefault(), tr, 60000)
	if res.Branch.Mispredicts == 0 {
		t.Fatal("the mix should mispredict sometimes")
	}
	if res.Fetched <= res.Committed {
		t.Error("mispredicts should cost wrong-path fetches")
	}
	if res.Rollbacks != 0 || res.PseudoROBRecoveries != 0 {
		t.Error("oracle recovery must not touch checkpoint counters")
	}
}

// TestAdaptivePlacesCheckpointsAtBranches: on a mispredict-heavy mix
// the estimator must find low-confidence branches and place checkpoints
// immediately before them.
func TestAdaptivePlacesCheckpointsAtBranches(t *testing.T) {
	tr := rollbackHeavyTrace(120000)
	res := mustRun(t, config.AdaptiveDefault(64, 1024), tr, 60000)
	if res.Branch.Mispredicts == 0 {
		t.Fatal("the mix should mispredict sometimes")
	}
	low := res.Policy["adaptive.low_confidence_branches"]
	high := res.Policy["adaptive.high_confidence_branches"]
	if low == 0 || high == 0 {
		t.Fatalf("estimator should see both classes: low=%d high=%d", low, high)
	}
	if res.Policy["adaptive.branch_checkpoints"] == 0 {
		t.Fatal("no checkpoint was ever placed at a branch")
	}
	if res.CheckpointsTaken == 0 || res.CheckpointsCommitted == 0 {
		t.Fatal("checkpoint machinery unused")
	}
}

// TestAdaptiveReducesReplayWaste is the mechanism's point: against pure
// periodic checkpointing (the only rule left once the branch rule is
// removed), confidence-placed checkpoints shorten the rollback replay
// distance on a rollback-heavy workload.
func TestAdaptiveReducesReplayWaste(t *testing.T) {
	tr := rollbackHeavyTrace(150000)
	adaptive := mustRun(t, config.AdaptiveDefault(64, 1024), tr, 80000)

	periodic := config.CheckpointDefault(64, 1024)
	periodic.CheckpointBranchInterval = 512 // disable the branch rule
	periodic.CheckpointMaxInterval = 512
	per := mustRun(t, periodic, tr, 80000)

	if adaptive.Rollbacks == 0 || per.Rollbacks == 0 {
		t.Fatalf("both configurations should roll back: adaptive=%d periodic=%d",
			adaptive.Rollbacks, per.Rollbacks)
	}
	if adaptive.Replayed >= per.Replayed {
		t.Errorf("confidence placement should cut replayed work: adaptive %d >= periodic %d",
			adaptive.Replayed, per.Replayed)
	}
}

// TestAdaptiveExceptionProtocol: the two-pass precise-exception replay
// must work unchanged under the adaptive taking rule.
func TestAdaptiveExceptionProtocol(t *testing.T) {
	tr := trace.FPMix(60000, 6)
	cpu, err := New(config.AdaptiveDefault(64, 1024), tr)
	if err != nil {
		t.Fatal(err)
	}
	positions := []int64{5000, 20000}
	for _, p := range positions {
		cpu.InjectExceptionAt(p)
	}
	res := cpu.Run(RunOptions{MaxInsts: 40000})
	if got := cpu.Exceptions(); got != uint64(len(positions)) {
		t.Fatalf("delivered %d exceptions, want %d", got, len(positions))
	}
	if res.Rollbacks < uint64(len(positions)) {
		t.Fatalf("each exception needs a rollback, got %d", res.Rollbacks)
	}
	if res.Committed < 40000 {
		t.Fatal("execution must complete after exceptions")
	}
}

// checkpointFamilyConfigs builds one equivalent configuration per
// checkpoint-family policy for the recovery corner-case tests.
func checkpointFamilyConfigs(mutate func(*config.Config)) map[string]config.Config {
	ck := config.CheckpointDefault(32, 512)
	ad := config.AdaptiveDefault(32, 512)
	out := map[string]config.Config{}
	for name, cfg := range map[string]config.Config{"checkpoint": ck, "adaptive": ad} {
		mutate(&cfg)
		out[name] = cfg
	}
	return out
}

// TestExceptionReplayWithFullCheckpointTable is the first recovery
// corner case of the policy seam: with a 2-entry table and tiny forced
// windows, the table is persistently full, so the exception replay's
// phase-2 checkpoint (which must land exactly before the excepting
// instruction) has to ride out full-table stalls before it can deliver.
// Both checkpoint-family policies must deliver precisely and remain
// deterministic.
func TestExceptionReplayWithFullCheckpointTable(t *testing.T) {
	tr := trace.FPMix(40000, 11)
	for name, cfg := range checkpointFamilyConfigs(func(c *config.Config) {
		c.Checkpoints = 2
		if c.Commit == config.CommitCheckpoint {
			c.CheckpointBranchInterval = 16
		}
		c.CheckpointMaxInterval = 16
		c.MemoryLatency = 100
	}) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func() stats.Results {
				cpu, err := New(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				cpu.InjectExceptionAt(3000)
				res := cpu.Run(RunOptions{MaxInsts: 20000})
				if cpu.Exceptions() != 1 {
					t.Fatalf("delivered %d exceptions, want 1", cpu.Exceptions())
				}
				return res
			}
			a, b := run(), run()
			if a.Committed < 20000 {
				t.Fatalf("committed %d < 20000", a.Committed)
			}
			if a.CheckpointStallCycles == 0 {
				t.Fatal("the 2-entry table should stall fetch; the full-table path was never exercised")
			}
			if a.Rollbacks == 0 {
				t.Fatal("exception delivery requires a rollback")
			}
			if !a.Equal(b) {
				t.Fatalf("reruns diverged:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// TestBranchRecoveryAtPseudoROBBoundary is the second corner case: with
// a checkpoint forced before every instruction, a resolving mispredicted
// branch sits exactly on the recovery boundary — pseudo-ROB recovery is
// only legal when no younger checkpoint exists (Youngest().StartSeq <=
// b.Seq, the equality edge), and every other branch must take the
// rollback path even while still pseudo-ROB resident. Both policies
// must pick correctly, make progress, and stay deterministic.
func TestBranchRecoveryAtPseudoROBBoundary(t *testing.T) {
	tr := rollbackHeavyTrace(60000)
	for name, cfg := range checkpointFamilyConfigs(func(c *config.Config) {
		c.Checkpoints = 8
		if c.Commit == config.CommitCheckpoint {
			c.CheckpointBranchInterval = 1
		}
		c.CheckpointMaxInterval = 1 // checkpoint before every instruction
		c.CheckpointMaxStores = 1
		c.MemoryLatency = 100
	}) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			a := mustRun(t, cfg, tr, 8000)
			b := mustRun(t, cfg, tr, 8000)
			if a.Branch.Mispredicts == 0 {
				t.Fatal("the mix should mispredict sometimes")
			}
			if a.Rollbacks == 0 {
				t.Fatal("per-instruction checkpoints force the rollback path at the boundary")
			}
			if !a.Equal(b) {
				t.Fatalf("reruns diverged:\n%+v\nvs\n%+v", a, b)
			}
		})
	}

	// The opposite edge: branches that resolve while still pseudo-ROB
	// resident with no younger checkpoint must use pseudo-ROB recovery
	// (both policies; fast index-chain branches of the fp mix).
	fast := trace.FPMix(120000, 42)
	for name, cfg := range checkpointFamilyConfigs(func(c *config.Config) {
		c.IntQueueEntries = 128
		c.FPQueueEntries = 128
		c.PseudoROBEntries = 128
		c.SLIQEntries = 1024
	}) {
		cfg := cfg
		t.Run(name+"/in-prob", func(t *testing.T) {
			res := mustRun(t, cfg, fast, 80000)
			if res.PseudoROBRecoveries == 0 {
				t.Fatal("fast-resolving mispredicts should recover from the pseudo-ROB")
			}
		})
	}
}

// TestPolicyCountersMerge: suite aggregation must sum the per-policy
// counters like every other counter.
func TestPolicyCountersMerge(t *testing.T) {
	tr := rollbackHeavyTrace(60000)
	cfg := config.AdaptiveDefault(64, 512)
	a := mustRun(t, cfg, tr, 20000)
	b := mustRun(t, cfg, tr, 20000)
	if len(a.Policy) == 0 {
		t.Fatal("adaptive run produced no policy counters")
	}
	want := map[string]uint64{}
	for k, v := range a.Policy {
		want[k] = v + b.Policy[k]
	}
	// A fresh accumulator: merging into a copy of `a` would alias (and
	// mutate) a.Policy's map.
	var sum stats.Results
	sum.Merge(a)
	sum.Merge(b)
	for k, w := range want {
		if sum.Policy[k] != w {
			t.Errorf("%s: merged %d, want %d", k, sum.Policy[k], w)
		}
	}
}
