package mem

// mshr tracks in-flight main-memory line fills: a bounded
// open-addressed hash table from line address to the absolute cycle the
// fill completes. It replaces a map[uint64]int64 on the per-access hot
// path: the common nothing-in-flight case is one length check, lookups
// are a linear probe over a flat array, inserts and deletes allocate
// nothing once the table reaches its working size, and reset/clone are
// a clear/copy of the backing arrays instead of a map reallocation.
//
// Keys are stored biased by +1 so a zero slot means empty; line address
// ^uint64(0) is therefore unrepresentable, which is unreachable in
// practice (it requires a one-byte L2 line at the very top of the
// address space).
//
// lsq.storeIndex is this table's twin with a pointer value type; the
// two stay hand-specialised because get/put sit on the simulator's
// hottest per-access paths and must inline. A fix to either table's
// probing or backward-shift deletion belongs in both.
type mshr struct {
	keys  []uint64 // line+1; 0 marks an empty slot
	vals  []int64
	n     int
	mask  uint64
	shift uint // 64 - log2(len(keys)), for Fibonacci hashing
}

// mshrMinSlots is the initial table size; figure-scale runs rarely have
// more than a few tens of lines in flight at once.
const mshrMinSlots = 64

// sizeFor returns the initial slot count for a hierarchy whose memory
// latency is lat cycles: unconstrained memory-level parallelism keeps
// roughly one line in flight per few cycles of latency on streaming
// workloads, so pre-sizing to the working size avoids the rehash churn
// of growing from mshrMinSlots on every simulation point.
func mshrSizeFor(lat int) int {
	size := mshrMinSlots
	for size < lat {
		size *= 2
	}
	return size
}

// init pre-sizes the table.
func (m *mshr) init(slots int) {
	m.keys = make([]uint64, slots)
	m.vals = make([]int64, slots)
	m.mask = uint64(slots - 1)
	m.shift = 64 - uint(log2(slots))
}

func (m *mshr) slot(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> m.shift
}

// get returns the fill-completion cycle of line, if it is in flight.
func (m *mshr) get(line uint64) (int64, bool) {
	if m.n == 0 {
		return 0, false
	}
	key := line + 1
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			return m.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// put records line as in flight until cycle val.
func (m *mshr) put(line uint64, val int64) {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	key := line + 1
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case 0:
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		case key:
			m.vals[i] = val
			return
		}
	}
}

// del removes line from the table (a no-op if absent) using
// backward-shift deletion, so probe chains stay dense without
// tombstones.
func (m *mshr) del(line uint64) {
	if m.n == 0 {
		return
	}
	key := line + 1
	i := m.slot(key)
	for m.keys[i] != key {
		if m.keys[i] == 0 {
			return
		}
		i = (i + 1) & m.mask
	}
	m.n--
	for j := i; ; {
		j = (j + 1) & m.mask
		k := m.keys[j]
		if k == 0 {
			break
		}
		// k may slide back into slot i only if i still lies within its
		// probe chain (between its home slot and j, cyclically).
		if (j-m.slot(k))&m.mask >= (j-i)&m.mask {
			m.keys[i] = k
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
}

// grow (re)builds the table at double capacity, reinserting the live
// entries. It runs O(log) times over a hierarchy's lifetime; reset
// keeps the grown arrays.
func (m *mshr) grow() {
	size := mshrMinSlots
	if len(m.keys) > 0 {
		size = 2 * len(m.keys)
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, size)
	m.vals = make([]int64, size)
	m.mask = uint64(size - 1)
	m.shift = 64 - uint(log2(size))
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			m.put(k-1, oldVals[i])
		}
	}
}

// reset empties the table, reusing the backing arrays.
func (m *mshr) reset() {
	if m.n != 0 {
		clear(m.keys)
		m.n = 0
	}
}

// clone returns a deep copy.
func (m *mshr) clone() mshr {
	nm := *m
	nm.keys = make([]uint64, len(m.keys))
	copy(nm.keys, m.keys)
	nm.vals = make([]int64, len(m.vals))
	copy(nm.vals, m.vals)
	return nm
}
