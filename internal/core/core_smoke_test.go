package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// runSmoke runs a configuration over a workload and applies sanity
// checks common to every pipeline mode.
func runSmoke(t *testing.T, cfg config.Config, tr *trace.Trace, n uint64) (sRes resultsWrapper) {
	t.Helper()
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := cpu.Run(RunOptions{MaxInsts: n})
	if res.Committed < n {
		t.Fatalf("committed %d < target %d (cycles=%d, state=%s)",
			res.Committed, n, res.Cycles, cpu.debugState())
	}
	if res.IPC() <= 0 {
		t.Fatalf("non-positive IPC: %+v", res)
	}
	if res.IPC() > float64(cfg.IssueWidth) {
		t.Fatalf("IPC %.2f exceeds issue width %d", res.IPC(), cfg.IssueWidth)
	}
	return resultsWrapper{res.IPC(), res.Cycles, res.Committed}
}

type resultsWrapper struct {
	ipc       float64
	cycles    int64
	committed uint64
}

func TestSmokeBaselineStream(t *testing.T) {
	cfg := config.BaselineSized(128)
	cfg.MemoryLatency = 100
	runSmoke(t, cfg, trace.Stream(30000), 20000)
}

func TestSmokeBaselineMix(t *testing.T) {
	cfg := config.BaselineSized(256)
	cfg.MemoryLatency = 100
	runSmoke(t, cfg, trace.FPMix(30000, 1), 20000)
}

func TestSmokeCheckpointStream(t *testing.T) {
	cfg := config.CheckpointDefault(64, 1024)
	cfg.MemoryLatency = 100
	runSmoke(t, cfg, trace.Stream(30000), 20000)
}

func TestSmokeCheckpointMix(t *testing.T) {
	cfg := config.CheckpointDefault(64, 1024)
	cfg.MemoryLatency = 100
	runSmoke(t, cfg, trace.FPMix(30000, 1), 20000)
}

func TestSmokeCheckpointLongLatency(t *testing.T) {
	cfg := config.CheckpointDefault(32, 512)
	cfg.MemoryLatency = 500
	runSmoke(t, cfg, trace.FPMix(30000, 2), 15000)
}

func TestSmokeBaselinePointerChase(t *testing.T) {
	cfg := config.BaselineSized(128)
	cfg.MemoryLatency = 200
	runSmoke(t, cfg, trace.PointerChase(5000), 3000)
}

func TestSmokeVirtualRegisters(t *testing.T) {
	cfg := config.CheckpointDefault(128, 1024)
	cfg.MemoryLatency = 100
	cfg.VirtualRegisters = true
	cfg.VirtualTags = 1024
	cfg.PhysRegs = 512
	runSmoke(t, cfg, trace.FPMix(30000, 3), 15000)
}
