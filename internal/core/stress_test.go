package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestStressRandomConfigs runs both pipelines under randomly drawn,
// deliberately tiny resource configurations on every workload. The
// assertion is liveness and accounting: every run must commit its
// target without tripping any internal panic (counter underflow,
// double-completion, dead SLIQ trigger, rename inconsistency, watchdog).
func TestStressRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(2024))
	traces := []*trace.Trace{
		trace.FPMix(30000, 1),
		trace.StridedStream(30000, 8),
		trace.Mix(30000, 3, trace.MixWeights{Strided: 3, CondSlow: 30, Blocked: 1}),
		trace.PointerChase(15000),
	}
	pick := func(xs []int) int { return xs[rng.Intn(len(xs))] }

	for trial := 0; trial < 40; trial++ {
		tr := traces[rng.Intn(len(traces))]
		var cfg config.Config
		if rng.Intn(2) == 0 {
			cfg = config.BaselineSized(pick([]int{8, 16, 32, 64, 256}))
		} else {
			cfg = config.CheckpointDefault(
				pick([]int{4, 8, 16, 32, 64}),
				pick([]int{0, 4, 16, 64, 256}),
			)
			cfg.Checkpoints = pick([]int{2, 3, 4, 8})
			cfg.CheckpointBranchInterval = pick([]int{4, 16, 64})
			cfg.CheckpointMaxInterval = cfg.CheckpointBranchInterval * pick([]int{2, 8})
			cfg.CheckpointMaxStores = pick([]int{4, 16, 64})
			if cfg.SLIQEntries > 0 {
				cfg.SLIQWakeDelay = pick([]int{0, 1, 7, 12})
				cfg.SLIQWakeWidth = pick([]int{1, 2, 4})
			}
		}
		cfg.MemoryLatency = pick([]int{10, 100, 500, 1000})
		cfg.MemoryPorts = pick([]int{1, 2, 4})
		cfg.LSQEntries = pick([]int{64, 256, 4096})
		cfg.PhysRegs = pick([]int{128, 512, 4096})
		if rng.Intn(4) == 0 {
			cfg.PerfectL2 = true
		}
		if rng.Intn(4) == 0 && cfg.Commit == config.CommitCheckpoint {
			cfg.VirtualRegisters = true
			cfg.VirtualTags = pick([]int{128, 512, 2048})
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}

		n := uint64(6000 + rng.Intn(8000))
		cpu, err := New(cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (%s on %s): panic: %v", trial, cfg.Summary(), tr.Name(), r)
				}
			}()
			res := cpu.Run(RunOptions{MaxInsts: n, WatchdogCycles: 3_000_000})
			if res.Committed < n {
				t.Fatalf("trial %d (%s on %s): committed %d < %d [%s]",
					trial, cfg.Summary(), tr.Name(), res.Committed, n, cpu.debugState())
			}
			if res.IPC() > float64(cfg.IssueWidth) {
				t.Fatalf("trial %d: IPC %.2f exceeds issue width", trial, res.IPC())
			}
		}()
	}
}

// TestStressTinyCheckpointTables drives the checkpointed pipeline with
// pathological heuristics (checkpoints at nearly every instruction) to
// exercise take/commit churn.
func TestStressTinyCheckpointTables(t *testing.T) {
	tr := trace.FPMix(20000, 17)
	cfg := config.CheckpointDefault(16, 64)
	cfg.Checkpoints = 4
	cfg.CheckpointBranchInterval = 1
	cfg.CheckpointMaxInterval = 8
	cfg.CheckpointMaxStores = 2
	cfg.MemoryLatency = 100
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 10000})
	if res.Committed < 10000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.CheckpointsCommitted < 1000 {
		t.Fatalf("expected heavy checkpoint churn, got %d commits", res.CheckpointsCommitted)
	}
}

// TestStressExceptionStorm injects many exceptions; each must deliver
// precisely and execution must still complete.
func TestStressExceptionStorm(t *testing.T) {
	tr := trace.FPMix(40000, 23)
	cfg := config.CheckpointDefault(64, 512)
	cfg.MemoryLatency = 100
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	const storms = 20
	for i := 1; i <= storms; i++ {
		cpu.InjectExceptionAt(int64(i * 1200))
	}
	res := cpu.Run(RunOptions{MaxInsts: 30000})
	if got := cpu.Exceptions(); got != storms {
		t.Fatalf("delivered %d exceptions, want %d", got, storms)
	}
	if res.Committed < 30000 {
		t.Fatalf("committed %d", res.Committed)
	}
}

// TestStressPeriodicCheckpointLivelock regresses a livelock the ablation
// sweep exposed: two branches aliasing one gshare counter with opposite
// biases inside a single checkpoint window would ping-pong forever under
// rollback-replay retraining. The known-resolved-branch mechanism must
// guarantee forward progress.
func TestStressPeriodicCheckpointLivelock(t *testing.T) {
	for _, n := range []int{64, 256, 512} {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.CheckpointBranchInterval = n
		cfg.CheckpointMaxInterval = n
		tr := trace.FPMix(64096, 42)
		cpu, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		res := cpu.Run(RunOptions{MaxInsts: 50000})
		if res.Committed < 50000 {
			t.Fatalf("periodic-%d: committed %d (%s)", n, res.Committed, cpu.debugState())
		}
	}
}
