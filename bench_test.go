package repro

// One benchmark per table/figure of the paper's evaluation. Each
// iteration regenerates the corresponding experiment on a reduced
// instruction budget (benchInsts) so -bench=. completes in minutes; the
// full-budget numbers recorded in EXPERIMENTS.md come from
// cmd/experiments. The suite-average IPC of the headline configuration
// is attached as a custom metric so regressions in simulated performance
// (not just simulator speed) are visible. Figures execute through the
// internal/sim worker pool; BenchmarkFigure9Parallel measures the same
// sweep at full parallelism (see also internal/sim's
// BenchmarkFigure9Sweep for the per-worker-count scaling curve).

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchInsts keeps each configuration point short; the touched data
// footprint still exceeds L2 for the streaming kernels' steady state.
const benchInsts = 60_000

func benchOpts() experiments.Options {
	return experiments.Options{Insts: benchInsts, Seed: 42, Workers: 1}
}

// BenchmarkTable1 measures a single baseline run at the paper's default
// parameters (Table 1) — the unit of work every figure multiplies.
func BenchmarkTable1(b *testing.B) {
	tr := trace.FPMix(benchInsts+benchInsts/5+4096, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := core.New(config.Default(), tr)
		if err != nil {
			b.Fatal(err)
		}
		res := cpu.Run(core.RunOptions{MaxInsts: benchInsts})
		b.ReportMetric(res.IPC(), "IPC")
	}
}

// BenchmarkFigure1 regenerates the window-size vs memory-latency sweep.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ByLatency[1000][len(r.Windows)-1], "IPC-4096@1000")
	}
}

// BenchmarkFigure7 regenerates the live-instruction distribution.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Points[2].Inflight), "median-inflight")
	}
}

// benchFigure9 times Figure9 at the given worker count with suite
// traces cached and pre-generated, so the measurement isolates the
// sweep engine rather than the serial trace-generation phase.
func benchFigure9(b *testing.B, workers int) {
	opt := benchOpts().WithTraceCache()
	opt.Workers = workers
	if _, err := experiments.Figure9(context.Background(), opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IPC[2048][128], "IPC-cooo128/2048")
	}
}

// BenchmarkFigure9 regenerates the main performance comparison serially
// (Figure 11's in-flight averages come from the same runs).
func BenchmarkFigure9(b *testing.B) { benchFigure9(b, 1) }

// BenchmarkFigure9Parallel regenerates the same sweep with the worker
// pool at GOMAXPROCS; the ratio to BenchmarkFigure9 is the engine's
// wall-clock speedup on this host.
func BenchmarkFigure9Parallel(b *testing.B) { benchFigure9(b, runtime.GOMAXPROCS(0)) }

// BenchmarkFigure9Programs regenerates the figure-9 grid over the
// real-program (RV32) suite: each iteration re-executes every program
// into a dynamic trace and sweeps the full grid, so the measurement
// covers the program frontend (decode + architectural execution +
// trace mapping) as well as the sweep engine. The warm-up call outside
// the timer populates the trace cache; iterations then isolate the
// simulation cost, matching benchFigure9's methodology.
func BenchmarkFigure9Programs(b *testing.B) {
	opt := benchOpts().WithTraceCache()
	if _, err := experiments.Figure9Programs(context.Background(), opt); err != nil {
		b.Fatal(err)
	}
	// Record fires serially per run; summing committed instructions lets
	// CI divide allocs/op by committed/op to enforce the <= 1.0
	// allocations-per-committed-instruction budget on the program path
	// (program traces can end before the Insts budget, so the count
	// cannot be derived from points x Insts).
	var committed uint64
	opt.Record = func(rec experiments.RunRecord) { committed += rec.Results.Committed }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9Programs(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IPC[2048][128], "IPC-cooo128/2048")
	}
	b.ReportMetric(float64(committed)/float64(b.N), "committed/op")
}

// BenchmarkFigure9HighLatency measures the event-driven clock skip in
// the regime it targets: the ROB-blocked baseline family over the
// figure-9 window axis (32/64/128), with the memory latency raised to
// 500 and 1000 cycles. A blocked ROB head leaves the whole pipeline
// quiescent for the better part of each miss, so the simulated clock
// spends most of its ticks doing nothing — exactly the cycles the skip
// elides (the COoO configurations keep committing through misses and
// are covered by BenchmarkFigure9). The sweep runs the two suite
// kernels whose reduced-budget (benchInsts) footprints actually reach
// main memory; the in-cache kernels never observe MemoryLatency and
// would only dilute the measurement. The noskip variants force
// cycle-by-cycle simulation of the same (bit-identical) points, so the
// noskip/skip ns-per-op ratio at each latency is the engine's speedup.
// CI gates on >=2x at latency 1000 and on the ratio growing from 500
// to 1000: stall stretches lengthen with latency while the event count
// stays fixed, so the speedup must rise.
func BenchmarkFigure9HighLatency(b *testing.B) {
	memBound := map[string]bool{"strided": true, "fpmix": true}
	var traces []*trace.Trace
	for _, bm := range experiments.SuiteBenchmarks(42) {
		if memBound[bm.Name] {
			traces = append(traces, bm.Gen(benchInsts+benchInsts/5+4096))
		}
	}
	for _, latency := range []int{500, 1000} {
		for _, mode := range []struct {
			name        string
			disableSkip bool
		}{{"skip", false}, {"noskip", true}} {
			var specs []sim.RunSpec
			for _, tr := range traces {
				for _, rob := range []int{32, 64, 128} {
					cfg := config.BaselineSized(rob)
					cfg.MemoryLatency = latency
					specs = append(specs, sim.RunSpec{
						Name:        fmt.Sprintf("rob%d", rob),
						Config:      cfg,
						Trace:       tr,
						Insts:       benchInsts,
						DisableSkip: mode.disableSkip,
					})
				}
			}
			b.Run(fmt.Sprintf("lat%d/%s", latency, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := sim.Sweep(context.Background(), specs, sim.Options{Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					var cycles, skipped uint64
					for _, r := range res {
						cycles += uint64(r.Cycles)
						skipped += r.SkippedCycles
					}
					b.ReportMetric(100*float64(skipped)/float64(cycles), "skipped-%")
				}
			})
		}
	}
}

// BenchmarkAblationCommitPolicies regenerates the commit-policy
// comparison (rob 128/4096, checkpoint, adaptive, oracle over the
// figure-9 workload set) — the ablation added with the policy engine.
func BenchmarkAblationCommitPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCommitPolicies(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IPC["adaptive-128/2048"], "IPC-adaptive")
		b.ReportMetric(r.IPC["oracle-unbounded"], "IPC-oracle")
	}
}

// BenchmarkFigure10 regenerates the re-insertion delay sensitivity.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MaxSlowdown(), "worst-slowdown-%")
	}
}

// BenchmarkFigure11 regenerates the in-flight instruction study. It
// shares implementation with Figure 9, as in the paper.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Inflight[2048][128], "inflight-cooo128/2048")
	}
}

// BenchmarkFigure12 regenerates the pseudo-ROB retirement breakdown.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Breakdown[2048][128].Fraction(0), "moved-%")
	}
}

// BenchmarkFigure13 regenerates the checkpoint-count sensitivity.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Slowdown(8), "slowdown-8ckpts-%")
	}
}

// BenchmarkFigure14 regenerates the virtual-register combination study.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IPC[1000][2048][512], "IPC-2048tags/512phys@1000")
	}
}

// BenchmarkFigure9ProgramsSampled measures SMARTS sampling end to end
// at the regime it targets: the program figure-9 grid at the 4M-inst
// default sampled budget, against its full-detail reference. The full
// sweep runs once outside the timer (wall-clocked separately); timed
// iterations run the sampled sweep. Two custom metrics carry the PR's
// acceptance contract into CI: speedup-vs-full (sampled must be >= 5x
// faster) and ci-misses (how many of the 55 per-program points have a
// full-detail IPC outside the sampled run's own reported 95% interval;
// must be 0 — the accuracy claim sampled figures rest on).
func BenchmarkFigure9ProgramsSampled(b *testing.B) {
	base := experiments.Options{Insts: experiments.DefaultSampledInsts, Seed: 42, Workers: 1}

	fullIPC := make(map[string]float64)
	fullOpt := base.WithTraceCache()
	fullOpt.Record = func(rec experiments.RunRecord) {
		fullIPC[rec.Benchmark+"|"+rec.Config] = rec.Results.IPC()
	}
	fullStart := time.Now()
	if _, err := experiments.Figure9Programs(context.Background(), fullOpt); err != nil {
		b.Fatal(err)
	}
	fullDur := time.Since(fullStart)

	type interval struct{ mean, ci float64 }
	var sampled map[string]interval
	sampledOpt := base
	sampledOpt.Record = func(rec experiments.RunRecord) {
		s := rec.Results.Sampled
		if s == nil {
			b.Errorf("%s (%s): sampled run returned no Sampled block", rec.Benchmark, rec.Config)
			return
		}
		sampled[rec.Benchmark+"|"+rec.Config] = interval{s.IPCMean(), s.IPCCI95()}
	}
	var sampledDur time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampled = make(map[string]interval)
		start := time.Now()
		if _, err := experiments.Figure9ProgramsSampled(context.Background(), sampledOpt); err != nil {
			b.Fatal(err)
		}
		sampledDur = time.Since(start)
	}
	b.StopTimer()

	misses := 0
	for key, f := range fullIPC {
		s, ok := sampled[key]
		if !ok {
			b.Fatalf("sampled sweep missing point %s", key)
		}
		if gap := math.Abs(f - s.mean); gap > s.ci {
			misses++
			b.Logf("ci miss: %s sampled %.4f +/- %.4f vs full-detail %.4f", key, s.mean, s.ci, f)
		}
	}
	b.ReportMetric(float64(fullDur)/float64(sampledDur), "speedup-vs-full")
	b.ReportMetric(float64(misses), "ci-misses")
}
