package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/isa/programs"
	"repro/internal/trace"
)

// The real-program counterparts of the synthetic evaluation: the same
// figure-9 grid and commit-policy ablation, run over RV32 programs
// executed into the pipeline instead of generated recipes. Program
// inputs are sized per program via Spec.InputFor so each dynamic stream
// lands near the per-point instruction budget, keeping the two suites
// comparable.

// ProgramSuiteNames lists the program-suite members (every registered
// program, sorted).
func ProgramSuiteNames() []string { return programs.Names() }

// ProgramRecipe returns the recipe the experiment suites use for one
// program under a committed-instruction budget.
func ProgramRecipe(name string, insts, seed uint64) (trace.Recipe, error) {
	spec, ok := programs.Lookup(name)
	if !ok {
		return trace.Recipe{}, fmt.Errorf("experiments: unknown program %q (have %v)", name, programs.Names())
	}
	return trace.Recipe{
		Kernel:  trace.KernelProgram,
		Program: name,
		Input:   spec.InputFor(insts),
		Seed:    seed,
	}, nil
}

// buildProgramSuite materialises (or, for remote runners, identifies)
// the program suite. The signature mirrors buildSuite so both share the
// Options caching path.
func buildProgramSuite(insts, seed uint64, recipeOnly bool) ([]suiteTrace, error) {
	names := programs.Names()
	out := make([]suiteTrace, len(names))
	for i, name := range names {
		r, err := ProgramRecipe(name, insts, seed)
		if err != nil {
			return nil, err
		}
		var tr *trace.Trace
		if recipeOnly {
			tr, err = trace.RecipeOnly(r)
		} else {
			tr, err = r.Materialise()
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out[i] = suiteTrace{name: name, tr: tr}
	}
	return out, nil
}

// Figure9Programs runs the figure-9 grid (the same checkpoint/baseline
// configurations as Figure9) over the real-program suite. Program
// dynamic lengths are properties of the programs, so points whose
// stream is shorter than the instruction budget simply run the program
// to completion.
func Figure9Programs(ctx context.Context, opt Options) (Figure9Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.programSuite()
	if err != nil {
		return Figure9Result{}, err
	}
	res, err := figure9Over(ctx, opt, suite)
	if err != nil {
		return Figure9Result{}, err
	}
	res.Suite = "program"
	return res, nil
}

// DefaultSampledInsts is the per-point stream budget sampled program
// figures default to: deep enough that sampling pays (dozens of
// windows, a detail fraction around 10%) yet bounded so the full-detail
// reference point in benchmarks stays feasible.
const DefaultSampledInsts = 4_000_000

// sampledProgramSuite identifies the program suite for sampled runs.
// Sampled points always stream — the suite is recipe-only even for the
// in-process runner, validated under the streamed budget cap rather
// than the materialisation cap, and nothing is generated up front.
func (o Options) sampledProgramSuite() ([]suiteTrace, error) {
	names := programs.Names()
	out := make([]suiteTrace, len(names))
	for i, name := range names {
		r, err := ProgramRecipe(name, o.Insts, o.Seed)
		if err != nil {
			return nil, err
		}
		tr, err := trace.StreamOnly(r)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out[i] = suiteTrace{name: name, tr: tr}
	}
	return out, nil
}

// Figure9ProgramsSampled is Figure9Programs under SMARTS sampling: the
// same grid over the same programs, but each point fast-forwards
// between detailed windows instead of simulating every instruction.
// With no explicit Sample spec it applies trace.DefaultSample and
// raises the budget to DefaultSampledInsts — the regime where sampling
// pays; an explicit spec keeps the caller's budget untouched so tests
// can shrink both together.
func Figure9ProgramsSampled(ctx context.Context, opt Options) (Figure9Result, error) {
	if !opt.Sample.Enabled() {
		opt.Sample = trace.DefaultSample()
		if opt.Insts < DefaultSampledInsts {
			opt.Insts = DefaultSampledInsts
		}
	}
	opt = opt.withDefaults()
	suite, err := opt.sampledProgramSuite()
	if err != nil {
		return Figure9Result{}, err
	}
	res, err := figure9Over(ctx, opt, suite)
	if err != nil {
		return Figure9Result{}, err
	}
	res.Suite = "program-sampled"
	return res, nil
}

// AblationCommitPoliciesPrograms is the commit-policy comparison over
// the real-program suite: the same variant set as
// AblationCommitPolicies, so the two tables read side by side.
func AblationCommitPoliciesPrograms(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	suite, err := opt.programSuite()
	if err != nil {
		return AblationResult{}, err
	}
	return opt.sweepSuite(ctx, "commit policies (program suite)", []variant{
		{"rob-128", config.BaselineSized(128)},
		{"rob-4096", config.BaselineSized(4096)},
		{"checkpoint-128/2048", config.CheckpointDefault(128, 2048)},
		{"adaptive-128/2048", config.AdaptiveDefault(128, 2048)},
		{"oracle-unbounded", config.OracleDefault()},
	}, suite)
}
