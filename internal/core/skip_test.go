package core

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runAB runs one (config, trace, options) point twice — cycle-by-cycle
// and with the event-driven clock skip — and returns both results with
// the skip's own diagnostic counters separated out, so callers can
// require bit-equality of the simulated statistics AND that the skip
// actually engaged.
func runAB(t *testing.T, cfg config.Config, tr *trace.Trace, opt RunOptions, except []int64) (tick, skip stats.Results, skipped uint64) {
	t.Helper()
	run := func(disable bool) stats.Results {
		cpu, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, pos := range except {
			cpu.InjectExceptionAt(pos)
		}
		o := opt
		o.DisableSkip = disable
		return cpu.Run(o)
	}
	tick = run(true)
	skip = run(false)
	if tick.SkippedCycles != 0 || tick.SkipEvents != 0 || tick.LongestSkip != 0 {
		t.Fatalf("cycle-by-cycle run reported skip activity: %+v", tick)
	}
	skipped = skip.SkippedCycles
	skip.SkippedCycles, skip.SkipEvents, skip.LongestSkip = 0, 0, 0
	return tick, skip, skipped
}

// TestSkipEquivalenceAcrossPolicies is the clock skip's central
// contract: for every commit-policy family, under the nastiest control
// flow we model (branch rollbacks, pseudo-ROB recoveries, the two-pass
// exception protocol) and a memory latency long enough to create real
// quiescent stretches, the skipping run's statistics are bit-identical
// to the cycle-by-cycle run's — and the skip genuinely engaged, so the
// equality is not vacuous. Run under -race in CI.
func TestSkipEquivalenceAcrossPolicies(t *testing.T) {
	tr := rollbackHeavyTrace(90000)
	for _, tc := range []struct {
		name       string
		cfg        config.Config
		exceptions bool // checkpoint family only
	}{
		{"rob", config.BaselineSized(128), false},
		{"checkpoint", config.CheckpointDefault(32, 1024), true},
		{"adaptive", config.AdaptiveDefault(32, 1024), true},
		{"oracle", config.OracleDefault(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.MemoryLatency = 2000 // long stalls → long quiescent stretches
			var except []int64
			if tc.exceptions {
				except = []int64{4000, 21000}
			}
			tick, skip, skipped := runAB(t, cfg, tr, RunOptions{MaxInsts: 50000, CollectOccupancy: true}, except)
			if !tick.Equal(skip) {
				t.Fatalf("skip run diverged from cycle-by-cycle run:\ntick: %+v\nskip: %+v", tick, skip)
			}
			if skipped == 0 {
				t.Fatal("clock skip never engaged; the equivalence check is vacuous")
			}
			t.Logf("%s: %d/%d cycles elided", tc.name, skipped, tick.Cycles)
		})
	}
}

// TestSkipOccupancyHistogramIdentical pins the weighted-sample path
// (stats.Occupancy.SampleN): the full occupancy distribution — not just
// its mean — must match the cycle-by-cycle run's sample for sample.
func TestSkipOccupancyHistogramIdentical(t *testing.T) {
	tr := trace.FPMix(60000, 7)
	cfg := config.CheckpointDefault(64, 2048)
	cfg.MemoryLatency = 1500
	tick, skip, skipped := runAB(t, cfg, tr, RunOptions{MaxInsts: 40000, CollectOccupancy: true}, nil)
	if skipped == 0 {
		t.Fatal("clock skip never engaged")
	}
	if tick.Occ == nil || skip.Occ == nil {
		t.Fatal("occupancy collection did not run")
	}
	if tick.Occ.Samples() != skip.Occ.Samples() {
		t.Fatalf("sample counts diverged: tick %d vs skip %d", tick.Occ.Samples(), skip.Occ.Samples())
	}
	if tick.Occ.Samples() != uint64(tick.Cycles) {
		t.Fatalf("occupancy sampled %d cycles of %d: elided cycles lost their samples",
			tick.Occ.Samples(), tick.Cycles)
	}
	for _, p := range []float64{0.10, 0.50, 0.90, 0.99} {
		if a, b := tick.Occ.Percentile(p), skip.Occ.Percentile(p); a != b {
			t.Fatalf("occupancy p%.0f diverged: tick %d vs skip %d", 100*p, a, b)
		}
	}
}

// TestSkipMaxCyclesExact pins cycle accounting at the MaxCycles
// boundary: a run cut off mid-quiescence must report exactly MaxCycles
// cycles (never overshoot past the bound), sample the occupancy
// histogram exactly once per cycle, and stay bit-identical to the
// cycle-by-cycle run at every cutoff — including cutoffs that land
// inside a would-be jump.
func TestSkipMaxCyclesExact(t *testing.T) {
	tr := trace.FPMix(60000, 7)
	cfg := config.CheckpointDefault(64, 2048)
	cfg.MemoryLatency = 1500
	for _, maxCycles := range []int64{1, 500, 1501, 2000, 2777, 5000} {
		opt := RunOptions{MaxInsts: 40000, MaxCycles: maxCycles, CollectOccupancy: true}
		tick, skip, _ := runAB(t, cfg, tr, opt, nil)
		if !tick.Equal(skip) {
			t.Fatalf("MaxCycles=%d: skip run diverged:\ntick: %+v\nskip: %+v", maxCycles, tick, skip)
		}
		if skip.Cycles > maxCycles {
			t.Fatalf("MaxCycles=%d: skip run overshot to %d cycles", maxCycles, skip.Cycles)
		}
		if skip.Committed < 40000 && skip.Cycles != maxCycles {
			t.Fatalf("MaxCycles=%d: run stopped early at cycle %d with %d committed",
				maxCycles, skip.Cycles, skip.Committed)
		}
		if got := skip.Occ.Samples(); got != uint64(skip.Cycles) {
			t.Fatalf("MaxCycles=%d: %d occupancy samples for %d cycles", maxCycles, got, skip.Cycles)
		}
	}
}

// TestSkipWatchdogStillFires proves a wedged core still panics — on the
// same cycle, with the same message — when the clock skip is eliding the
// stalled cycles: the watchdog bound caps every jump, so the panic
// cycle always executes for real.
func TestSkipWatchdogStillFires(t *testing.T) {
	tr := trace.Stream(20000)
	cfg := config.BaselineSized(64)
	// A single main-memory load outlives the whole watchdog window, so
	// the ROB head pins commit long enough to trip it.
	cfg.MemoryLatency = 30000
	capture := func(disable bool) (msg string) {
		cpu, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		cpu.Run(RunOptions{MaxInsts: 15000, WatchdogCycles: 5000, DisableSkip: disable})
		return ""
	}
	tick, skip := capture(true), capture(false)
	if tick == "" || skip == "" {
		t.Fatalf("watchdog did not fire: tick=%q skip=%q", tick, skip)
	}
	if tick != skip {
		t.Fatalf("watchdog panics diverged:\ntick: %s\nskip: %s", tick, skip)
	}
}

// TestSkipDisabledUnderVirtualRegisters: virtual-register mode runs
// cycle-by-cycle (its deferred-bind machinery sits outside the
// quiescence probe), so its runs must never report skip activity.
func TestSkipDisabledUnderVirtualRegisters(t *testing.T) {
	cfg := config.CheckpointDefault(64, 2048)
	cfg.VirtualRegisters = true
	cfg.VirtualTags = 2048
	cfg.MemoryLatency = 1500
	cpu, err := New(cfg, trace.FPMix(30000, 7))
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 20000})
	if res.SkippedCycles != 0 || res.SkipEvents != 0 {
		t.Fatalf("virtual-register run reported skip activity: %+v", res)
	}
}

// TestEventWheelNextDue pins the skip's event-horizon query against the
// wheel's pop order: nextDue must see ring and far-heap events alike,
// never move anything, and clamp to the caller's limit.
func TestEventWheelNextDue(t *testing.T) {
	w := newEventWheel(64)
	mk := func(seq uint64, done int64) *DynInst {
		d := &DynInst{Seq: seq, DoneCycle: done}
		d.heapIdx = eventNone
		return d
	}
	if got := w.nextDue(100); got != 100 {
		t.Fatalf("empty wheel: nextDue(100) = %d, want 100", got)
	}
	w.push(mk(1, 10)) // ring
	w.push(mk(2, 90)) // far heap (beyond base+64)
	if got := w.nextDue(100); got != 10 {
		t.Fatalf("nextDue(100) = %d, want 10 (ring)", got)
	}
	if got := w.nextDue(5); got != 5 {
		t.Fatalf("nextDue(5) = %d, want clamp to 5", got)
	}
	// Drain the ring event; the far event must then be visible even
	// though its cycle is outside the ring's current horizon.
	if due := w.takeDue(10); len(due) != 1 || due[0].Seq != 1 {
		t.Fatalf("takeDue(10) = %v", due)
	}
	if got := w.nextDue(1000); got != 90 {
		t.Fatalf("nextDue(1000) = %d, want 90 (far heap)", got)
	}
	if w.Len() != 1 {
		t.Fatalf("nextDue moved events: len %d, want 1", w.Len())
	}
	// A far-heap entry whose cycle is inside the ring horizon (it never
	// migrates) must still be found before a later ring entry.
	w2 := newEventWheel(64)
	w2.push(mk(3, 200)) // far
	_ = w2.takeDue(150) // base past 140: 200 is now within the ring horizon
	w2.push(mk(4, 180)) // ring
	if got := w2.nextDue(1000); got != 180 {
		t.Fatalf("nextDue(1000) = %d, want 180", got)
	}
	w2.remove(mk(4, 180)) // not scheduled: no-op
	b := w2.buckets[180&w2.mask]
	w2.remove(b[0])
	if got := w2.nextDue(1000); got != 200 {
		t.Fatalf("after remove: nextDue(1000) = %d, want 200 (far entry inside horizon)", got)
	}
}
