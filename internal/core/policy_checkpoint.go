package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/rename"
	"repro/internal/stats"
)

// checkpointPolicy is the paper's out-of-order commit: no ROB; a small
// checkpoint table commits whole instruction windows at once, a
// pseudo-ROB FIFO delays the long-latency classification (section 3),
// and the SLIQ slow lane (owned by the CPU, built here) keeps the small
// issue queues useful. It is also the base of the adaptive policy,
// which only replaces the checkpoint-taking rule.
type checkpointPolicy struct {
	c     *CPU
	ckpts *checkpoint.Table
	prob  *queue.Deque[*DynInst]
	// master is the simulator-side in-flight list (not modelled HW).
	master masterList

	// SLIQ dependence mask over logical registers (paper section 3).
	// maskOwnerSeq generation-checks the owner: a freed-and-reallocated
	// physical register must not satisfy a stale mask bit.
	depMask      [isa.NumLogical]bool
	maskOwner    [isa.NumLogical]rename.PhysReg
	maskOwnerSeq [isa.NumLogical]uint64

	// takeRule, when non-nil, replaces the table's interval heuristics
	// as the checkpoint-taking decision (the adaptive policy installs
	// its confidence rule here). It must be side-effect-free: Admit can
	// re-evaluate it for the same instruction across stall cycles.
	takeRule func(inst isa.Inst) bool
}

func init() {
	RegisterCommitPolicy(config.CommitCheckpoint, func(c *CPU) CommitPolicy {
		return newCheckpointPolicy(c, checkpoint.Policy{
			BranchInterval: c.cfg.CheckpointBranchInterval,
			MaxInterval:    c.cfg.CheckpointMaxInterval,
			MaxStores:      c.cfg.CheckpointMaxStores,
		})
	})
}

// newCheckpointPolicy builds the checkpoint-commit machinery, including
// the CPU-owned SLIQ (it is threaded through the shared wakeup paths).
func newCheckpointPolicy(c *CPU, pol checkpoint.Policy) *checkpointPolicy {
	p := &checkpointPolicy{
		c:     c,
		ckpts: checkpoint.NewTable(c.cfg.Checkpoints, pol),
		prob:  queue.NewDeque[*DynInst](c.cfg.PseudoROBEntries),
	}
	// Rollback-discarded windows recycle their snapshot backing; the
	// rollback itself only reads the surviving entries' snapshots (the
	// pendingFree sets), so discarded ones are dead by the time the
	// table unlinks them.
	p.ckpts.OnDiscard = func(e *checkpoint.Entry) {
		c.rt.ReleaseSnapshot(e.Snap)
		e.Snap = rename.Snapshot{}
	}
	if c.cfg.SLIQEntries > 0 {
		c.sliq = queue.NewSLIQ[*DynInst](c.cfg.SLIQEntries, c.cfg.SLIQWakeDelay,
			c.cfg.SLIQWakeWidth, c.rt.NumPhys())
	}
	for i := range p.maskOwner {
		p.maskOwner[i] = rename.PhysNone
	}
	return p
}

// shouldTake evaluates the checkpoint-taking rule for the instruction
// about to dispatch.
func (p *checkpointPolicy) shouldTake(inst isa.Inst) bool {
	if p.takeRule != nil {
		return p.takeRule(inst)
	}
	return p.ckpts.ShouldTake(inst.Op)
}

// Admit takes any required checkpoint before the instruction; doing it
// first means the window closes even if the instruction then stalls on
// another resource (otherwise an open window could never commit and the
// stalled resource would never recycle). The exception protocol's
// second pass (phase 2) also lands here: the excepting instruction is
// precisely checkpointed, then the exception delivers.
func (p *checkpointPolicy) Admit(inst isa.Inst, pos int64) bool {
	c := p.c
	need := p.shouldTake(inst) || c.exceptPhase(pos) == 2
	if !need {
		return true
	}
	if p.ckpts.Full() {
		c.ckptStallCycles++
		c.stalls.Ckpt++
		return false
	}
	p.takeCheckpoint(pos)
	if c.exceptPhase(pos) == 2 {
		c.exceptArm[pos] = 0
		c.exceptions++
	}
	return true
}

// takeCheckpoint snapshots the machine before the instruction about to
// dispatch (whose sequence number will be nextSeq and trace position
// pos; pos may be the current fetch position for emergency checkpoints).
func (p *checkpointPolicy) takeCheckpoint(pos int64) {
	c := p.c
	// Taking a checkpoint moves no CPU-visible counter, yet it changes
	// what the next cycle can do; the clock skip's quiescence probe
	// watches this to tell two outwardly identical stall cycles apart.
	c.policyActivity++
	snap := c.rt.TakeSnapshot()
	if pos < 0 {
		// Wrong-path instruction: record the correct-path resume point.
		pos = c.fetchPos
	}
	if e := p.ckpts.Take(c.nextSeq, pos, snap, c.pred.HistorySnapshot()); e == nil {
		panic("core: checkpoint table full after Full() check")
	}
}

// MakeRoom extracts the oldest pseudo-ROB entry when the FIFO is full;
// this is where the paper's delayed long-latency classification happens
// (section 3).
func (p *checkpointPolicy) MakeRoom() {
	if p.prob.Full() {
		p.extractPseudoROB()
	}
}

// AllocateDest uses the deferred-release discipline: the previous
// mapping's Future Free bit is set and released at window commit.
func (p *checkpointPolicy) AllocateDest(dest isa.Reg) (rename.PhysReg, rename.PhysReg, bool) {
	return p.c.rt.Allocate(dest)
}

// UnwindDest reverses one checkpointed allocation (pseudo-ROB branch
// recovery; valid because no checkpoint was taken after the allocation).
func (p *checkpointPolicy) UnwindDest(d *DynInst) {
	p.c.rt.UnwindCheckpointed(d.Inst.Dest, d.DestPhys, d.PrevPhys)
}

// Dispatched associates the instruction with the youngest checkpoint
// and enters it into the pseudo-ROB and the master list. The exception
// protocol's first pass arms here: the instruction raises when it
// completes.
func (p *checkpointPolicy) Dispatched(d *DynInst) {
	c := p.c
	d.ckpt = p.ckpts.Youngest()
	p.ckpts.Associate(d.ckpt, d.Inst.Op)
	if !p.prob.PushBack(d) {
		panic("core: pseudo-ROB full after extraction")
	}
	d.inProb = true
	p.master.push(d)
	if c.exceptPhase(d.Pos) == 1 {
		d.ExceptAt = true
	}
}

// Completed decrements the owning checkpoint's pending counter.
func (p *checkpointPolicy) Completed(d *DynInst) {
	if d.ckpt != nil {
		p.ckpts.Finished(d.ckpt)
	}
}

// Squashed removes the instruction from its checkpoint's accounting.
func (p *checkpointPolicy) Squashed(d *DynInst) {
	if d.ckpt == nil {
		return
	}
	if d.Done {
		p.ckpts.SquashedDone(d.ckpt, d.Inst.Op)
	} else {
		p.ckpts.Squashed(d.ckpt, d.Inst.Op)
	}
}

// Commit retires every committable checkpoint: the oldest window whose
// instructions have all finished commits as a unit — its deferred
// register frees are applied and its stores drain to memory. This is
// the paper's out-of-order commit: instructions "commit" (their
// resources are released) without any per-instruction in-order walk.
func (p *checkpointPolicy) Commit() {
	c := p.c
	for p.ckpts.CanCommit() {
		e, futureFree, endSeq := p.ckpts.Commit()
		c.rt.CommitFutureFree(futureFree)
		c.lq.DrainStoresBefore(endSeq, c.hier.StoreCommit)
		p.retireWindow(endSeq)
		// The committed window's snapshot is dead (futureFree above
		// belongs to the next checkpoint); recycle its backing sets.
		c.rt.ReleaseSnapshot(e.Snap)
		e.Snap = rename.Snapshot{}
		c.lastCommitCycle = c.now
	}

	// End-of-program drain: the final window has no younger checkpoint
	// to close it; retire it once every instruction has finished.
	if c.fetchExhausted() && p.ckpts.Len() == 1 &&
		p.ckpts.Oldest().Pending == 0 && p.master.len() > 0 {
		c.lq.DrainStoresBefore(c.nextSeq, c.hier.StoreCommit)
		p.retireWindow(c.nextSeq)
		c.lastCommitCycle = c.now
	}
}

// retireWindow removes committed instructions (Seq < endSeq) from the
// simulator's in-flight list. Records still resident in the pseudo-ROB
// stay alive (Retired) until extraction classifies them for Figure 12;
// everything else recycles now.
func (p *checkpointPolicy) retireWindow(endSeq uint64) {
	c := p.c
	for p.master.len() > 0 && p.master.front().Seq < endSeq {
		d := p.master.popFront()
		switch {
		case d.Squashed, d.WrongPath:
			panic(fmt.Sprintf("core: dead instruction in committed window: %v", d))
		case !d.Done:
			panic(fmt.Sprintf("core: unfinished instruction in committed window: %v", d))
		}
		d.lsqe = nil
		c.committed++
		c.inflight--
		if d.inProb {
			d.Retired = true
		} else {
			c.pool.release(d)
		}
	}
}

// DispatchStalled is the deadlock-avoidance window of a cycle that
// dispatched nothing.
func (p *checkpointPolicy) DispatchStalled() {
	c := p.c
	// Pressure-driven extraction: when nothing could dispatch because an
	// issue queue is full, retire pseudo-ROB entries anyway so
	// mask-dependent occupants move to the SLIQ and free queue space.
	// Without this the two-level hierarchy throttles itself: moves
	// happen at extraction, extraction normally happens at dispatch,
	// dispatch needs queue space.
	if c.intQ.Full() || c.fpQ.Full() {
		for i := 0; i < c.cfg.FetchWidth && p.prob.Len() > 0; i++ {
			p.extractPseudoROB()
		}
	}
	// Deadlock avoidance: a stall on registers, tags or LSQ space can
	// only clear when a window commits — and the open window cannot
	// commit until a younger checkpoint closes it. Take an emergency
	// checkpoint at the stalled instruction.
	if c.resourceStalled && !p.ckpts.Full() {
		if y := p.ckpts.Youngest(); y != nil && y.Insts > 0 {
			p.takeCheckpoint(c.fetchPos)
		}
	}
}

// NextRetireEvent reports "now" while a window could commit this cycle
// — a committable checkpoint, or the end-of-program drain of the final
// open window — and -1 otherwise. Both conditions can only become true
// through a completion (Pending hitting zero) or a checkpoint take,
// events the clock skip already observes, so -1 is safe. The adaptive
// policy inherits this (it only replaces the checkpoint-taking rule).
func (p *checkpointPolicy) NextRetireEvent(now int64) int64 {
	c := p.c
	if p.ckpts.CanCommit() {
		return now
	}
	if c.fetchExhausted() && p.ckpts.Len() == 1 &&
		p.ckpts.Oldest().Pending == 0 && p.master.len() > 0 {
		return now
	}
	return -1
}

// ResolveMispredict recovers a mispredicted branch: if the branch is
// still inside the pseudo-ROB and no younger checkpoint exists, recover
// from the pseudo-ROB exactly like the baseline; otherwise roll back to
// the branch's checkpoint, re-executing the (correct-path) instructions
// between the checkpoint and the branch — the cost the paper's
// take-a-checkpoint-at-branches heuristic minimises.
func (p *checkpointPolicy) ResolveMispredict(b *DynInst) {
	c := p.c
	if b.inProb && p.ckpts.Youngest() != nil && p.ckpts.Youngest().StartSeq <= b.Seq {
		p.pseudoROBRecovery(b)
		return
	}
	// The rollback hardware knows this branch's direction; its replay
	// will not mispredict (see tryDispatch).
	c.markBranchKnown(b)
	p.rollbackToCheckpoint(b.ckpt)
}

// pseudoROBRecovery squashes every instruction younger than the branch.
// All of them are wrong-path and, because the branch is still in the
// pseudo-ROB, all of them are too — the FIFO tail walk finds exactly
// the victims, and the CAM rename state unwinds per instruction.
func (p *checkpointPolicy) pseudoROBRecovery(b *DynInst) {
	c := p.c
	for {
		back, ok := p.prob.Back()
		if !ok || back.Seq <= b.Seq {
			break
		}
		d, _ := p.prob.PopBack()
		d.inProb = false
		m := p.master.popBack()
		if m != d {
			panic(fmt.Sprintf("core: pseudo-ROB/master desync: %v vs %v", d, m))
		}
		c.squashInst(d, true)
	}
	c.lq.SquashYounger(b.Seq + 1)
	c.fetchPos = b.Pos + 1
	c.probRecoveries++
	// Squashed wrong-path instructions may have seeded the SLIQ
	// dependence masks; drop them (conservative — the masks rebuild
	// from subsequent extractions).
	p.clearDepMasks()
}

// clearDepMasks resets the SLIQ dependence-tracking state.
func (p *checkpointPolicy) clearDepMasks() {
	for i := range p.depMask {
		p.depMask[i] = false
		p.maskOwner[i] = rename.PhysNone
	}
}

// rollbackToCheckpoint restores the machine to the state captured by
// target: every instruction of its window and younger is squashed, the
// rename map snapshot is restored, and fetch resumes at the window
// start. Squashed correct-path instructions count as replayed work.
func (p *checkpointPolicy) rollbackToCheckpoint(target *checkpoint.Entry) {
	c := p.c
	startSeq := target.StartSeq

	if c.sliq != nil {
		c.sliq.SquashYounger(startSeq, func(d *DynInst) {
			d.inSLIQ = false
		})
	}
	for {
		back, ok := p.prob.Back()
		if !ok || back.Seq < startSeq {
			break
		}
		d, _ := p.prob.PopBack()
		d.inProb = false
	}
	for p.master.len() > 0 && p.master.back().Seq >= startSeq {
		d := p.master.popBack()
		c.squashInst(d, false)
	}
	c.lq.SquashYounger(startSeq)

	pendingFree := p.ckpts.Rollback(target)
	c.rt.Rollback(target.Snap, pendingFree)
	c.pred.RestoreHistory(target.History)
	c.fetchPos = target.FetchPos

	// The dependence masks refer to pre-rollback physical registers.
	p.clearDepMasks()
	if c.divergedAt != nil && c.divergedAt.Seq >= startSeq {
		c.divergedAt = nil
	}
	c.rollbacks++
}

// RaiseException implements the paper's two-pass precise-exception
// protocol (section 2): roll back to the excepting instruction's
// checkpoint, then re-execute "in a stricter sense" with a checkpoint
// placed exactly before the excepting instruction, leaving the machine
// precise for the operating system.
func (p *checkpointPolicy) RaiseException(d *DynInst) {
	c := p.c
	if c.exceptArm == nil {
		c.exceptArm = make([]uint8, c.tr.Len())
	}
	c.exceptArm[d.Pos] = 2
	p.rollbackToCheckpoint(d.ckpt)
	c.fetchResumeAt = c.now + int64(c.cfg.BranchMispredictPenalty)
}

// OccupancyBound sizes the histogram for the kilo-instruction windows
// checkpoint commit sustains.
func (p *checkpointPolicy) OccupancyBound() int {
	return 4 * p.c.cfg.CheckpointMaxInterval * p.c.cfg.Checkpoints
}

// AddStats extracts the checkpoint-table counters.
func (p *checkpointPolicy) AddStats(r *stats.Results) {
	cs := p.ckpts.Stats()
	r.CheckpointsTaken = cs.Taken
	r.CheckpointsCommitted = cs.Committed
	r.CheckpointStallCycles = p.c.ckptStallCycles
}

// DebugState renders the checkpoint table and pseudo-ROB occupancy.
func (p *checkpointPolicy) DebugState() string {
	s := fmt.Sprintf(" ckpts=%d/%d", p.ckpts.Len(), p.ckpts.Cap())
	if o := p.ckpts.Oldest(); o != nil {
		s += fmt.Sprintf(" oldest{id=%d pending=%d insts=%d}", o.ID, o.Pending, o.Insts)
	}
	s += fmt.Sprintf(" prob=%d/%d", p.prob.Len(), p.prob.Cap())
	if p.c.sliq != nil {
		s += fmt.Sprintf(" sliq=%d/%d", p.c.sliq.Len(), p.c.sliq.Cap())
	}
	return s
}
