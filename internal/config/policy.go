package config

import (
	"fmt"
	"strings"
)

// This file is the config half of the commit-policy registry: each
// policy declares which parameter blocks of Config it reads and how to
// validate them. The other half — the retirement engines themselves —
// lives in internal/core (core.RegisterCommitPolicy); a core test
// cross-checks that both registries agree.
//
// The contract mirrors trace.Recipe's "identical workloads must
// fingerprint identically" rule from the simulation service: a
// parameter the selected policy ignores must be zero, otherwise two
// configurations that compute the same thing would hash to different
// content addresses and the result cache would never dedupe them.

// CommitPolicyInfo describes one registered commit policy for CLIs and
// error messages.
type CommitPolicyInfo struct {
	// Mode is the registry key: the wire name of the policy.
	Mode CommitMode
	// Summary is a one-line description for -commit usage text.
	Summary string
}

// commitPolicySpec couples the public info with the policy's
// parameter-block validation.
type commitPolicySpec struct {
	info CommitPolicyInfo
	// validate checks the policy's own parameter block and rejects the
	// blocks it ignores, reporting problems through add.
	validate func(c Config, add func(format string, args ...any))
}

// commitPolicySpecs is keyed by CommitMode; commitPolicyOrder preserves
// registration order for stable listings.
var (
	commitPolicySpecs = map[CommitMode]commitPolicySpec{}
	commitPolicyOrder []CommitMode
)

func registerCommitPolicy(info CommitPolicyInfo, validate func(Config, func(string, ...any))) {
	if _, dup := commitPolicySpecs[info.Mode]; dup {
		panic(fmt.Sprintf("config: commit policy %q registered twice", info.Mode))
	}
	commitPolicySpecs[info.Mode] = commitPolicySpec{info: info, validate: validate}
	commitPolicyOrder = append(commitPolicyOrder, info.Mode)
}

// CommitPolicies returns the registered commit policies in registration
// order.
func CommitPolicies() []CommitPolicyInfo {
	out := make([]CommitPolicyInfo, 0, len(commitPolicyOrder))
	for _, m := range commitPolicyOrder {
		out = append(out, commitPolicySpecs[m].info)
	}
	return out
}

// KnownCommitMode reports whether m names a registered commit policy.
func KnownCommitMode(m CommitMode) bool {
	_, ok := commitPolicySpecs[m]
	return ok
}

// ParseCommitMode resolves a policy name from user input (flags, JSON).
func ParseCommitMode(s string) (CommitMode, error) {
	m := CommitMode(s)
	if !KnownCommitMode(m) {
		return "", fmt.Errorf("config: unknown commit policy %q (valid: %s)", s, commitModeList())
	}
	return m, nil
}

// commitModeList renders the registered policy names for error messages.
func commitModeList() string {
	names := make([]string, len(commitPolicyOrder))
	for i, m := range commitPolicyOrder {
		names[i] = string(m)
	}
	return strings.Join(names, ", ")
}

func init() {
	registerCommitPolicy(CommitPolicyInfo{
		Mode:    CommitROB,
		Summary: "conventional in-order retirement from a reorder buffer",
	}, validateROB)
	registerCommitPolicy(CommitPolicyInfo{
		Mode:    CommitCheckpoint,
		Summary: "the paper's out-of-order checkpoint commit (interval heuristics)",
	}, validateCheckpoint)
	registerCommitPolicy(CommitPolicyInfo{
		Mode:    CommitAdaptive,
		Summary: "checkpoint commit with confidence-driven checkpoint placement",
	}, validateAdaptive)
	registerCommitPolicy(CommitPolicyInfo{
		Mode:    CommitOracle,
		Summary: "unbounded-window in-order retirement (limit-study baseline)",
	}, validateOracle)
}

// ---- per-policy validation ----

func validateROB(c Config, add func(string, ...any)) {
	if c.ROBEntries < 1 {
		add("rob policy requires ROBEntries >= 1, got %d", c.ROBEntries)
	}
	if c.CommitWidth < 1 {
		add("rob policy requires CommitWidth >= 1, got %d", c.CommitWidth)
	}
	rejectCheckpointBlock(c, "rob", add)
	rejectAdaptiveBlock(c, "rob", add)
	rejectVirtualRegisters(c, "rob", add)
}

func validateCheckpoint(c Config, add func(string, ...any)) {
	if c.CheckpointBranchInterval < 1 {
		add("checkpoint branch interval %d < 1", c.CheckpointBranchInterval)
	}
	if c.CheckpointMaxInterval < c.CheckpointBranchInterval {
		add("checkpoint max interval %d < branch interval %d",
			c.CheckpointMaxInterval, c.CheckpointBranchInterval)
	}
	validateCheckpointCommon(c, "checkpoint", add)
	rejectAdaptiveBlock(c, "checkpoint", add)
	validateVirtualRegisters(c, add)
}

func validateAdaptive(c Config, add func(string, ...any)) {
	// The confidence rule replaces the fixed branch-interval heuristic;
	// a non-zero interval would be dead configuration.
	if c.CheckpointBranchInterval != 0 {
		add("adaptive policy replaces CheckpointBranchInterval with the confidence estimator; set it to 0, got %d",
			c.CheckpointBranchInterval)
	}
	if c.CheckpointMaxInterval < 1 {
		add("checkpoint max interval %d < 1", c.CheckpointMaxInterval)
	}
	validateCheckpointCommon(c, "adaptive", add)
	if c.AdaptiveConfidenceBits < 1 || c.AdaptiveConfidenceBits > 30 {
		add("adaptive confidence table bits %d out of range [1,30]", c.AdaptiveConfidenceBits)
	}
	if c.AdaptiveConfidenceMax < 1 || c.AdaptiveConfidenceMax > 255 {
		add("adaptive confidence counter max %d out of range [1,255]", c.AdaptiveConfidenceMax)
	}
	if c.AdaptiveConfidenceThreshold < 1 || c.AdaptiveConfidenceThreshold > c.AdaptiveConfidenceMax {
		add("adaptive confidence threshold %d out of range [1,%d]",
			c.AdaptiveConfidenceThreshold, c.AdaptiveConfidenceMax)
	}
	validateVirtualRegisters(c, add)
}

func validateOracle(c Config, add func(string, ...any)) {
	rejectROBBlock(c, "oracle", add)
	rejectCheckpointBlock(c, "oracle", add)
	rejectAdaptiveBlock(c, "oracle", add)
	rejectVirtualRegisters(c, "oracle", add)
}

// validateCheckpointCommon covers the parameter rules shared by the
// checkpoint family (checkpoint and adaptive): table, pseudo-ROB and
// SLIQ sizing, plus rejection of the rob block.
func validateCheckpointCommon(c Config, policy string, add func(string, ...any)) {
	if c.Checkpoints < 2 {
		// A window only commits once a younger checkpoint closes it, so
		// a single-entry table can never retire anything.
		add("%s policy requires at least 2 checkpoints, got %d", policy, c.Checkpoints)
	}
	if c.PseudoROBEntries < 1 {
		add("%s policy requires a pseudo-ROB, got %d entries", policy, c.PseudoROBEntries)
	}
	if c.CheckpointMaxStores < 1 {
		add("checkpoint max stores %d < 1", c.CheckpointMaxStores)
	}
	if c.SLIQEntries < 0 {
		add("negative SLIQ entries %d", c.SLIQEntries)
	}
	if c.SLIQEntries > 0 {
		if c.SLIQWakeDelay < 0 {
			add("negative SLIQ wake delay %d", c.SLIQWakeDelay)
		}
		if c.SLIQWakeWidth < 1 {
			add("SLIQ wake width %d < 1", c.SLIQWakeWidth)
		}
	} else {
		if c.SLIQWakeDelay != 0 || c.SLIQWakeWidth != 0 {
			add("SLIQ disabled (0 entries) ignores wake delay %d / width %d; set both to 0",
				c.SLIQWakeDelay, c.SLIQWakeWidth)
		}
	}
	rejectROBBlock(c, policy, add)
}

// rejectROBBlock rejects the rob-only parameters for policies without a
// reorder buffer.
func rejectROBBlock(c Config, policy string, add func(string, ...any)) {
	if c.ROBEntries != 0 {
		add("%s policy ignores ROBEntries; set it to 0, got %d", policy, c.ROBEntries)
	}
	if c.CommitWidth != 0 {
		add("%s policy ignores CommitWidth (retirement is not N/cycle); set it to 0, got %d",
			policy, c.CommitWidth)
	}
}

// rejectCheckpointBlock rejects the checkpoint-family parameters for
// policies without a checkpoint table.
func rejectCheckpointBlock(c Config, policy string, add func(string, ...any)) {
	type field struct {
		name string
		val  int
	}
	for _, f := range []field{
		{"Checkpoints", c.Checkpoints},
		{"CheckpointBranchInterval", c.CheckpointBranchInterval},
		{"CheckpointMaxInterval", c.CheckpointMaxInterval},
		{"CheckpointMaxStores", c.CheckpointMaxStores},
		{"PseudoROBEntries", c.PseudoROBEntries},
		{"SLIQEntries", c.SLIQEntries},
		{"SLIQWakeDelay", c.SLIQWakeDelay},
		{"SLIQWakeWidth", c.SLIQWakeWidth},
	} {
		if f.val != 0 {
			add("%s policy ignores %s; set it to 0, got %d", policy, f.name, f.val)
		}
	}
}

// rejectAdaptiveBlock rejects the confidence-estimator parameters for
// policies that never consult it.
func rejectAdaptiveBlock(c Config, policy string, add func(string, ...any)) {
	type field struct {
		name string
		val  int
	}
	for _, f := range []field{
		{"AdaptiveConfidenceBits", c.AdaptiveConfidenceBits},
		{"AdaptiveConfidenceMax", c.AdaptiveConfidenceMax},
		{"AdaptiveConfidenceThreshold", c.AdaptiveConfidenceThreshold},
	} {
		if f.val != 0 {
			add("%s policy ignores %s; set it to 0, got %d", policy, f.name, f.val)
		}
	}
}

// validateVirtualRegisters checks the Figure 14 extension block where it
// is supported (the checkpoint family: tags bind to the deferred-free
// rename discipline).
func validateVirtualRegisters(c Config, add func(string, ...any)) {
	if c.VirtualRegisters && c.VirtualTags < 1 {
		add("virtual registers enabled but VirtualTags %d < 1", c.VirtualTags)
	}
	if !c.VirtualRegisters && c.VirtualTags != 0 {
		add("VirtualTags %d set but virtual registers disabled; set it to 0", c.VirtualTags)
	}
}

// rejectVirtualRegisters rejects the extension for policies whose
// rename discipline cannot host it (rob and oracle free registers at
// per-instruction commit, not at checkpoint commit).
func rejectVirtualRegisters(c Config, policy string, add func(string, ...any)) {
	if c.VirtualRegisters || c.VirtualTags != 0 {
		add("%s policy does not support virtual registers (checkpoint-family rename only)", policy)
	}
}
