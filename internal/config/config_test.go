package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch width", c.FetchWidth, 4},
		{"issue width", c.IssueWidth, 4},
		{"commit width", c.CommitWidth, 4},
		{"predictor bits (16K)", c.BranchPredictorBits, 14},
		{"mispredict penalty", c.BranchMispredictPenalty, 10},
		{"IL1 size", c.IL1.SizeBytes, 32 << 10},
		{"IL1 line", c.IL1.LineBytes, 32},
		{"IL1 latency", c.IL1.LatencyCycles, 2},
		{"DL1 size", c.DL1.SizeBytes, 32 << 10},
		{"L2 size", c.L2.SizeBytes, 512 << 10},
		{"L2 line", c.L2.LineBytes, 64},
		{"L2 latency", c.L2.LatencyCycles, 10},
		{"memory latency", c.MemoryLatency, 1000},
		{"memory ports", c.MemoryPorts, 2},
		{"physical registers", c.PhysRegs, 4096},
		{"LSQ", c.LSQEntries, 4096},
		{"int queue", c.IntQueueEntries, 4096},
		{"fp queue", c.FPQueueEntries, 4096},
		{"ROB", c.ROBEntries, 4096},
		{"int ALUs", c.IntAlu.Count, 4},
		{"int mul units", c.IntMul.Count, 2},
		{"mul latency", c.IntMul.Latency, 3},
		{"div latency", c.IntDiv.Latency, 20},
		{"div repeat (unpipelined)", c.IntDiv.Repeat, 20},
		{"FP units", c.FPAlu.Count, 4},
		{"FP latency", c.FPAlu.Latency, 2},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
}

func TestCheckpointDefault(t *testing.T) {
	c := CheckpointDefault(64, 1024)
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if c.Commit != CommitCheckpoint {
		t.Error("commit mode should be checkpoint")
	}
	if c.IntQueueEntries != 64 || c.FPQueueEntries != 64 || c.PseudoROBEntries != 64 {
		t.Error("queues and pseudo-ROB must all equal the iq parameter (paper's setup)")
	}
	if c.SLIQEntries != 1024 {
		t.Error("SLIQ size not applied")
	}
	if c.Checkpoints != 8 {
		t.Errorf("paper default is 8 checkpoints, got %d", c.Checkpoints)
	}
	if c.CheckpointBranchInterval != 64 || c.CheckpointMaxInterval != 512 || c.CheckpointMaxStores != 64 {
		t.Error("checkpoint heuristics must match the paper (64/512/64)")
	}
}

func TestBaselineSized(t *testing.T) {
	c := BaselineSized(256)
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if c.ROBEntries != 256 || c.IntQueueEntries != 256 || c.FPQueueEntries != 256 {
		t.Error("BaselineSized must scale ROB and both queues")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IssueWidth = -1 },
		func(c *Config) { c.BranchPredictorBits = 0 },
		func(c *Config) { c.IL1.LineBytes = 48 }, // not a power of two
		func(c *Config) { c.L2.Assoc = 0 },
		func(c *Config) { c.MemoryLatency = 0 },
		func(c *Config) { c.MemoryPorts = 0 },
		func(c *Config) { c.PhysRegs = 10 },
		func(c *Config) { c.ROBEntries = 0 },
		func(c *Config) { c.IntMul.Count = 1 }, // mul/div share units
		func(c *Config) { c.IntAlu.Repeat = 5 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestValidateCheckpointMode(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.Checkpoints = 1 },
		func(c *Config) { c.PseudoROBEntries = 0 },
		func(c *Config) { c.CheckpointBranchInterval = 0 },
		func(c *Config) { c.CheckpointMaxInterval = 10 }, // below branch interval
		func(c *Config) { c.CheckpointMaxStores = 0 },
		func(c *Config) { c.SLIQEntries = -1 },
		func(c *Config) { c.SLIQWakeWidth = 0 },
		func(c *Config) { c.VirtualRegisters = true; c.VirtualTags = 0 },
	}
	for i, mutate := range bad {
		c := CheckpointDefault(64, 512)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCacheConfigSets(t *testing.T) {
	cc := CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 2}
	if got := cc.Sets(); got != 256 {
		t.Errorf("Sets = %d, want 256", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"gshare", "512 KB", "1000 cycles", "4096 entries"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 rendering missing %q:\n%s", want, s)
		}
	}
	cs := CheckpointDefault(32, 512).String()
	for _, want := range []string{"Checkpoint table", "Pseudo-ROB", "SLIQ"} {
		if !strings.Contains(cs, want) {
			t.Errorf("checkpoint rendering missing %q", want)
		}
	}
}

func TestSummary(t *testing.T) {
	if s := BaselineSized(128).Summary(); !strings.Contains(s, "baseline rob=128") {
		t.Errorf("baseline summary: %q", s)
	}
	c := CheckpointDefault(64, 1024)
	c.VirtualRegisters = true
	c.VirtualTags = 512
	if s := c.Summary(); !strings.Contains(s, "cooo iq=64") || !strings.Contains(s, "vtags=512") {
		t.Errorf("checkpoint summary: %q", s)
	}
	c.PerfectL2 = true
	if s := c.Summary(); !strings.Contains(s, "perfectL2") {
		t.Errorf("perfect L2 summary: %q", s)
	}
}

func TestCommitModeString(t *testing.T) {
	if CommitROB.String() != "rob" || CommitCheckpoint.String() != "checkpoint" ||
		CommitAdaptive.String() != "adaptive" || CommitOracle.String() != "oracle" {
		t.Error("commit mode names wrong")
	}
}

func TestCommitPolicyRegistry(t *testing.T) {
	infos := CommitPolicies()
	if len(infos) != 4 {
		t.Fatalf("registered %d policies, want 4", len(infos))
	}
	want := []CommitMode{CommitROB, CommitCheckpoint, CommitAdaptive, CommitOracle}
	for i, info := range infos {
		if info.Mode != want[i] {
			t.Errorf("policy %d = %q, want %q", i, info.Mode, want[i])
		}
		if info.Summary == "" {
			t.Errorf("policy %q has no summary", info.Mode)
		}
		if !KnownCommitMode(info.Mode) {
			t.Errorf("KnownCommitMode(%q) = false", info.Mode)
		}
	}
	if _, err := ParseCommitMode("adaptive"); err != nil {
		t.Errorf("ParseCommitMode(adaptive): %v", err)
	}
	if _, err := ParseCommitMode("warp"); err == nil {
		t.Error("ParseCommitMode accepted an unregistered policy")
	} else if !strings.Contains(err.Error(), "oracle") {
		t.Errorf("error should list valid policies: %v", err)
	}
}

func TestAdaptiveDefault(t *testing.T) {
	c := AdaptiveDefault(64, 1024)
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if c.Commit != CommitAdaptive {
		t.Error("commit mode should be adaptive")
	}
	if c.CheckpointBranchInterval != 0 {
		t.Error("adaptive replaces the branch-interval rule; it must be 0")
	}
	if c.AdaptiveConfidenceBits != 12 || c.AdaptiveConfidenceMax != 15 || c.AdaptiveConfidenceThreshold != 8 {
		t.Errorf("confidence defaults wrong: %d/%d/%d",
			c.AdaptiveConfidenceBits, c.AdaptiveConfidenceMax, c.AdaptiveConfidenceThreshold)
	}
	if !strings.Contains(c.Summary(), "adaptive") {
		t.Errorf("summary: %q", c.Summary())
	}
	if s := c.String(); !strings.Contains(s, "Confidence estimator") {
		t.Errorf("Table-1 rendering missing the estimator:\n%s", s)
	}
}

func TestOracleDefault(t *testing.T) {
	c := OracleDefault()
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if c.Commit != CommitOracle {
		t.Error("commit mode should be oracle")
	}
	if c.ROBEntries != 0 || c.CommitWidth != 0 {
		t.Error("oracle must zero the rob block")
	}
	if !strings.Contains(c.Summary(), "oracle") {
		t.Errorf("summary: %q", c.Summary())
	}
	if s := c.String(); !strings.Contains(s, "unbounded window") {
		t.Errorf("Table-1 rendering missing the oracle row:\n%s", s)
	}
}

// TestValidateRejectsIgnoredBlocks pins the fingerprint-identity rule:
// a parameter the selected policy never reads must be zero, so two
// configurations describing the same simulation cannot hash to
// different cache addresses.
func TestValidateRejectsIgnoredBlocks(t *testing.T) {
	cases := []struct {
		name   string
		mutate func() Config
	}{
		{"rob with checkpoint table", func() Config {
			c := Default()
			c.Checkpoints = 8
			return c
		}},
		{"rob with SLIQ wake width", func() Config {
			c := Default()
			c.SLIQWakeWidth = 4
			return c
		}},
		{"rob with confidence block", func() Config {
			c := Default()
			c.AdaptiveConfidenceBits = 12
			return c
		}},
		{"rob with virtual registers", func() Config {
			c := Default()
			c.VirtualRegisters = true
			c.VirtualTags = 512
			return c
		}},
		{"checkpoint with ROB entries", func() Config {
			c := CheckpointDefault(64, 1024)
			c.ROBEntries = 128
			return c
		}},
		{"checkpoint with commit width", func() Config {
			c := CheckpointDefault(64, 1024)
			c.CommitWidth = 4
			return c
		}},
		{"checkpoint with confidence block", func() Config {
			c := CheckpointDefault(64, 1024)
			c.AdaptiveConfidenceThreshold = 8
			return c
		}},
		{"checkpoint without SLIQ but with wake params", func() Config {
			c := CheckpointDefault(64, 0)
			c.SLIQWakeWidth = 4
			return c
		}},
		{"adaptive with branch interval", func() Config {
			c := AdaptiveDefault(64, 1024)
			c.CheckpointBranchInterval = 64
			return c
		}},
		{"oracle with checkpoint table", func() Config {
			c := OracleDefault()
			c.Checkpoints = 8
			c.CheckpointBranchInterval = 64
			c.CheckpointMaxInterval = 512
			c.CheckpointMaxStores = 64
			c.PseudoROBEntries = 128
			return c
		}},
		{"oracle with rob entries", func() Config {
			c := OracleDefault()
			c.ROBEntries = 4096
			return c
		}},
		{"virtual tags without the extension", func() Config {
			c := CheckpointDefault(64, 1024)
			c.VirtualTags = 512
			return c
		}},
	}
	for _, tc := range cases {
		if err := tc.mutate().Validate(); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestValidateAdaptiveMode(t *testing.T) {
	bad := []func(c *Config){
		func(c *Config) { c.AdaptiveConfidenceBits = 0 },
		func(c *Config) { c.AdaptiveConfidenceBits = 31 },
		func(c *Config) { c.AdaptiveConfidenceMax = 0 },
		func(c *Config) { c.AdaptiveConfidenceMax = 256 },
		func(c *Config) { c.AdaptiveConfidenceThreshold = 0 },
		func(c *Config) { c.AdaptiveConfidenceThreshold = 16 }, // above the counter max
		func(c *Config) { c.Checkpoints = 1 },
		func(c *Config) { c.CheckpointMaxInterval = 0 },
	}
	for i, mutate := range bad {
		c := AdaptiveDefault(64, 512)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
