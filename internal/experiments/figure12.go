package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/stats"
)

// Figure12Result holds the pseudo-ROB retirement breakdown per
// configuration: the six stacked sections of Figure 12.
type Figure12Result struct {
	SLIQs []int
	IQs   []int
	// Breakdown[sliq][iq] aggregates retirement classes over the suite.
	Breakdown map[int]map[int]stats.Breakdown
}

// Figure12 classifies every instruction at the moment it leaves the
// pseudo-ROB: moved to the SLIQ, already finished, short-latency,
// finished/hitting loads, L2-missing loads, and stores.
func Figure12(ctx context.Context, opt Options) (Figure12Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure12Result{}, err
	}

	var points []point
	for _, sliq := range Figure9SLIQs {
		for _, iq := range Figure9IQs {
			points = append(points, point{cfg: config.CheckpointDefault(iq, sliq)})
		}
	}
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure12Result{}, err
	}

	res := Figure12Result{
		SLIQs:     Figure9SLIQs,
		IQs:       Figure9IQs,
		Breakdown: map[int]map[int]stats.Breakdown{},
	}
	k := 0
	for _, sliq := range res.SLIQs {
		res.Breakdown[sliq] = map[int]stats.Breakdown{}
		for _, iq := range res.IQs {
			var agg stats.Breakdown
			for _, r := range groups[k] {
				for c := stats.RetireClass(0); c < stats.NumRetireClasses; c++ {
					agg[c] += r.Retire[c]
				}
			}
			res.Breakdown[sliq][iq] = agg
			k++
		}
	}
	return res, nil
}

// String renders percentages per configuration, bottom-to-top in the
// paper's stacking order.
func (r Figure12Result) String() string {
	header := []string{"SLIQ/IQ"}
	for c := stats.RetireClass(0); c < stats.NumRetireClasses; c++ {
		header = append(header, c.String())
	}
	var rows [][]string
	for _, sliq := range r.SLIQs {
		for _, iq := range r.IQs {
			b := r.Breakdown[sliq][iq]
			row := []string{fmt.Sprintf("%d/%d", sliq, iq)}
			for c := stats.RetireClass(0); c < stats.NumRetireClasses; c++ {
				row = append(row, f1(100*b.Fraction(c))+"%")
			}
			rows = append(rows, row)
		}
	}
	return renderTable("Figure 12: breakdown of instructions retired from the pseudo-ROB", header, rows)
}
