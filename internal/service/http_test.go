package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// figure9Batch builds a figure-9-shaped batch at test scale: the full
// 3x3 COoO grid plus the two baselines, each over the whole benchmark
// suite — 11 configurations x 6 workloads = 66 points.
func figure9Batch(insts uint64) []Job {
	n := trace.LenFor(insts)
	recipes := []trace.Recipe{
		{Kernel: trace.KernelStream, N: n},
		{Kernel: trace.KernelStrided, N: n, Stride: 8},
		{Kernel: trace.KernelStencil, N: n},
		{Kernel: trace.KernelReduction, N: n},
		{Kernel: trace.KernelBlocked, N: n},
		{Kernel: trace.KernelFPMix, N: n, Seed: 42},
	}
	var cfgs []config.Config
	for _, sliq := range []int{512, 1024, 2048} {
		for _, iq := range []int{32, 64, 128} {
			cfgs = append(cfgs, config.CheckpointDefault(iq, sliq))
		}
	}
	cfgs = append(cfgs, config.BaselineSized(128), config.BaselineSized(4096))

	var jobs []Job
	for _, cfg := range cfgs {
		for _, r := range recipes {
			jobs = append(jobs, Job{Name: r.Kernel, Config: cfg, Trace: r, Insts: insts})
		}
	}
	return jobs
}

// TestEndToEndWarmBatch is the PR's acceptance test: submit a
// figure-9-sized batch to the daemon twice. The second submission must
// be >= 95% cache hits, return byte-identical results, and perform
// zero simulator calls for cached points.
func TestEndToEndWarmBatch(t *testing.T) {
	cache, err := NewCache(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Workers: 4, Cache: cache})
	var runs atomic.Int64
	sched.run = func(spec sim.RunSpec, _ *mem.Hierarchy) (stats.Results, error) {
		runs.Add(1)
		return sim.Run(spec)
	}
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	jobs := figure9Batch(1200)

	// Cold: every point simulates.
	coldByIndex := make([]string, len(jobs))
	coldResults, err := client.Run(ctx, jobs, func(ev Event, _ *stats.Results) {
		if ev.Type == "result" {
			coldByIndex[ev.Index] = string(ev.Results)
			if ev.Cached {
				t.Errorf("cold run reported point %d as cached", ev.Index)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(coldResults) != len(jobs) {
		t.Fatalf("cold run returned %d results, want %d", len(coldResults), len(jobs))
	}
	coldRuns := runs.Load()
	if coldRuns != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d points, want %d", coldRuns, len(jobs))
	}

	// Warm: resubmit the identical batch.
	warmByIndex := make([]string, len(jobs))
	hits := 0
	warmResults, err := client.Run(ctx, jobs, func(ev Event, _ *stats.Results) {
		if ev.Type == "result" {
			warmByIndex[ev.Index] = string(ev.Results)
			if ev.Cached {
				hits++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// >= 95% cache hits (here: all of them).
	if hits*100 < 95*len(jobs) {
		t.Errorf("warm run had %d/%d cache hits, want >= 95%%", hits, len(jobs))
	}
	// Zero simulator calls for cached points: the counter must not
	// have moved for any hit (and with a fully warm cache, at all).
	if warmRuns := runs.Load(); warmRuns != coldRuns+int64(len(jobs)-hits) {
		t.Errorf("warm run performed %d simulator calls for cached points", warmRuns-coldRuns)
	}

	// Byte-identical stats.Results per point, compared on the raw wire
	// bytes (a decoded-struct comparison could mask encoding drift).
	for i := range jobs {
		if coldByIndex[i] == "" || warmByIndex[i] == "" {
			t.Fatalf("point %d missing raw results (cold %q, warm %q)", i, coldByIndex[i], warmByIndex[i])
		}
		if coldByIndex[i] != warmByIndex[i] {
			t.Errorf("point %d: warm results not byte-identical to cold", i)
		}
	}
	// And the decoded structs agree too.
	for i := range jobs {
		if !coldResults[i].Equal(warmResults[i]) {
			t.Errorf("point %d: decoded results differ between cold and warm", i)
		}
	}
}

// TestHTTPErrors covers the API's failure surface.
func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewScheduler(SchedulerOptions{Workers: 1})))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Unknown batch: 404 from both endpoints.
	if _, err := client.Status(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "no such batch") {
		t.Errorf("unknown batch status error: %v", err)
	}
	if err := client.Stream(ctx, "nope", func(Event) error { return nil }); err == nil {
		t.Error("streaming an unknown batch succeeded")
	}

	// Invalid batch: 400 with the job named.
	bad := testJob("bad", 64)
	bad.Trace.Kernel = "quicksort"
	if _, err := client.Submit(ctx, []Job{bad}); err == nil || !strings.Contains(err.Error(), "quicksort") {
		t.Errorf("invalid submit error: %v", err)
	}
	if _, err := client.Submit(ctx, nil); err == nil {
		t.Error("empty submit succeeded")
	}

	// Malformed request body.
	resp, err := http.Post(srv.URL+"/v1/batches", "application/json", strings.NewReader(`{"jbos":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field in body: status %d, want 400", resp.StatusCode)
	}

	// Health endpoint.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestHTTPPollWhileRunning polls a batch mid-flight and checks the
// snapshot is coherent (done <= total, state transitions to done).
func TestHTTPPollWhileRunning(t *testing.T) {
	sched := NewScheduler(SchedulerOptions{Workers: 1})
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, []Job{testJob("p1", 32), testJob("p2", 64), testJob("p3", 128)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.Done > st.Total {
		t.Fatalf("submit snapshot incoherent: %+v", st)
	}
	for {
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done > cur.Total {
			t.Fatalf("poll snapshot incoherent: %+v", cur)
		}
		if cur.State == StateDone {
			if cur.Done != cur.Total || len(cur.Errors) != 0 {
				t.Fatalf("final snapshot incoherent: %+v", cur)
			}
			break
		}
	}
}
