package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRetireClassNames(t *testing.T) {
	want := map[RetireClass]string{
		RetireMoved:        "Moved",
		RetireFinished:     "Finished",
		RetireShortLat:     "Short Lat.",
		RetireFinishedLoad: "Finished Loads",
		RetireLongLatLoad:  "Long Lat. Loads",
		RetireStore:        "Stores",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b[RetireMoved] = 30
	b[RetireStore] = 10
	b[RetireFinished] = 60
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.Fraction(RetireMoved); got != 0.3 {
		t.Fatalf("fraction = %v", got)
	}
	if (Breakdown{}).Fraction(RetireMoved) != 0 {
		t.Fatal("empty breakdown must report 0")
	}
	if s := b.String(); !strings.Contains(s, "Moved 30.0%") {
		t.Fatalf("rendering: %q", s)
	}
}

func TestOccupancyPercentiles(t *testing.T) {
	o := NewOccupancy(100)
	// 100 samples: occupancy i at cycle i.
	for i := 0; i <= 99; i++ {
		o.Sample(i, i/10, i/20)
	}
	if o.Samples() != 100 {
		t.Fatalf("samples = %d", o.Samples())
	}
	if got := o.Percentile(0.25); got != 24 {
		t.Errorf("p25 = %d, want 24", got)
	}
	if got := o.Percentile(0.50); got != 49 {
		t.Errorf("p50 = %d, want 49", got)
	}
	if got := o.Percentile(1.0); got != 99 {
		t.Errorf("p100 = %d, want 99", got)
	}
	if got := o.Mean(); got != 49.5 {
		t.Errorf("mean = %v, want 49.5", got)
	}
	if got := o.Max(); got != 99 {
		t.Errorf("max = %d", got)
	}
}

func TestOccupancyLiveAtPercentile(t *testing.T) {
	o := NewOccupancy(10)
	o.Sample(1, 4, 2)
	o.Sample(2, 8, 4)
	o.Sample(10, 100, 100)
	long, short := o.LiveAtPercentile(0.67)
	// Cycles with occupancy <= p67 (=2): averages of (4,8) and (2,4).
	if long != 6 || short != 3 {
		t.Fatalf("live = (%v, %v), want (6, 3)", long, short)
	}
}

func TestOccupancyClamping(t *testing.T) {
	o := NewOccupancy(4)
	o.Sample(100, 0, 0) // clamps to the top bucket
	o.Sample(-5, 0, 0)  // clamps to zero
	if o.Percentile(1.0) != 4 {
		t.Fatal("overflow sample must clamp to capacity")
	}
	if o.Samples() != 2 {
		t.Fatal("both samples must count")
	}
}

func TestOccupancyMerge(t *testing.T) {
	a, b := NewOccupancy(10), NewOccupancy(10)
	a.Sample(1, 1, 0)
	b.Sample(3, 0, 1)
	b.MergeInto(a)
	if a.Samples() != 2 {
		t.Fatal("merge must add samples")
	}
	if a.Percentile(1.0) != 3 {
		t.Fatal("merged distribution wrong")
	}
}

func TestOccupancyEmpty(t *testing.T) {
	o := NewOccupancy(10)
	if o.Percentile(0.5) != 0 || o.Mean() != 0 {
		t.Fatal("empty tracker must report zeros")
	}
	long, short := o.LiveAtPercentile(0.5)
	if long != 0 || short != 0 {
		t.Fatal("empty tracker live counts must be zero")
	}
}

// Percentile is monotonic in p.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(samples []uint8, p1, p2 uint8) bool {
		o := NewOccupancy(256)
		for _, s := range samples {
			o.Sample(int(s), 0, 0)
		}
		a, b := float64(p1%101)/100, float64(p2%101)/100
		if a > b {
			a, b = b, a
		}
		return o.Percentile(a) <= o.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultsDerived(t *testing.T) {
	r := Results{Cycles: 1000, Committed: 2500, Replayed: 250}
	if r.IPC() != 2.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.ReplayRate() != 0.1 {
		t.Fatalf("replay rate = %v", r.ReplayRate())
	}
	var zero Results
	if zero.IPC() != 0 || zero.ReplayRate() != 0 {
		t.Fatal("zero results must not divide by zero")
	}
	r.Name = "test"
	if s := r.String(); !strings.Contains(s, "IPC=2.500") {
		t.Fatalf("rendering: %q", s)
	}
}
