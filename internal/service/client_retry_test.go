package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// fastRetrier is a test retry policy with the stock classification but
// millisecond backoff.
func fastRetrier(attempts int, onRetry func(int, error, time.Duration)) *faults.Retrier {
	return &faults.Retrier{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Retryable:   RetryableDefault,
		OnRetry:     onRetry,
	}
}

// TestClientSubmitRetries429: admission backpressure is retried until
// the daemon admits the batch; the retry count is observable through
// OnRetry.
func TestClientSubmitRetries429(t *testing.T) {
	sched := NewScheduler(SchedulerOptions{Workers: 1})
	inner := NewHandler(sched)
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/batches" && attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var retries atomic.Int64
	client := &Client{BaseURL: srv.URL, Retry: fastRetrier(4, func(int, error, time.Duration) { retries.Add(1) })}
	st, err := client.Submit(context.Background(), []Job{testJob("r", 32)})
	if err != nil {
		t.Fatalf("submit through 429s: %v", err)
	}
	if st.Total != 1 {
		t.Fatalf("submitted status = %+v", st)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d submit attempts, want 3", got)
	}
	if got := retries.Load(); got != 2 {
		t.Errorf("client retried %d times, want 2", got)
	}
}

// TestClientSubmit503NotRetried: a draining node's 503 is a routing
// signal, surfaced immediately rather than absorbed by backoff.
func TestClientSubmit503NotRetried(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer srv.Close()

	client := &Client{BaseURL: srv.URL, Retry: fastRetrier(4, nil)}
	_, err := client.Submit(context.Background(), []Job{testJob("d", 32)})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit to draining node = %v, want StatusError 503", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("client retried a 503 (%d attempts), want exactly 1", got)
	}
}

// TestClientStreamResumes: the stream survives a garbled line and a
// premature end by reconnecting; because the server replays history on
// every open, fn still sees every event exactly once.
func TestClientStreamResumes(t *testing.T) {
	sched := NewScheduler(SchedulerOptions{Workers: 2})
	inner := NewHandler(sched)
	jobs := []Job{testJob("s1", 32), testJob("s2", 64)}
	b, err := sched.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	ev0, ok, err := b.WaitEvent(ctx, 0)
	if err != nil || !ok {
		t.Fatalf("first event unavailable: %v", err)
	}

	var streams atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			switch streams.Add(1) {
			case 1:
				// Garbled line mid-transfer: client must drop the
				// connection and replay, not deliver garbage.
				fmt.Fprintln(w, `{"type":"result","index":`)
				return
			case 2:
				// One intact event, then the body ends without "done": a
				// severed stream.
				json.NewEncoder(w).Encode(ev0)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client := &Client{BaseURL: srv.URL, Retry: fastRetrier(4, nil)}
	counts := map[int]int{}
	done := 0
	err = client.Stream(context.Background(), b.ID(), func(ev Event) error {
		if ev.Type == "done" {
			done++
			return nil
		}
		counts[ev.Index]++
		return nil
	})
	if err != nil {
		t.Fatalf("stream with reconnects: %v", err)
	}
	if got := streams.Load(); got != 3 {
		t.Errorf("server saw %d stream opens, want 3", got)
	}
	for i := range jobs {
		if counts[i] != 1 {
			t.Errorf("point %d delivered %d times, want exactly once", i, counts[i])
		}
	}
	if done != 1 {
		t.Errorf("done event delivered %d times, want once", done)
	}
}

// TestParseRetryAfter covers the header forms backoff honours.
func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if d := parseRetryAfter(h); d != 0 {
		t.Errorf("absent header = %v, want 0", d)
	}
	h.Set("Retry-After", "2")
	if d := parseRetryAfter(h); d != 2*time.Second {
		t.Errorf("delta-seconds = %v, want 2s", d)
	}
	h.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if d := parseRetryAfter(h); d <= 0 || d > 3*time.Second {
		t.Errorf("http-date = %v, want (0, 3s]", d)
	}
	h.Set("Retry-After", "soon")
	if d := parseRetryAfter(h); d != 0 {
		t.Errorf("garbage header = %v, want 0", d)
	}
}
