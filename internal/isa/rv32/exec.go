package rv32

import "fmt"

// Address-space layout shared by all programs. The text base is nonzero
// so instruction PCs never collide with the isa.Inst convention that a
// zero address is invalid; program data lives above the text and the
// stack grows down from StackTop.
const (
	TextBase uint32 = 0x1000
	DataBase uint32 = 0x10000
	StackTop uint32 = 0x7FFF0

	// minAddr guards the executor: any data access below it is a
	// program bug (null or text-range pointer) and faults.
	minAddr uint32 = 0x1000

	pageBits = 12
	pageSize = 1 << pageBits
)

// Segment is one initialised data region of a program image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is an executable image: encoded text at TextBase, initialised
// data segments, and the initial register file (programs receive their
// parameters in registers, classic bare-metal style). Programs halt by
// executing EBREAK.
type Program struct {
	Name string
	Text []uint32
	Data []Segment
	// Init holds initial register values by register number; x0 must
	// be absent or zero.
	Init map[int]uint32
}

// Machine architecturally executes a Program: a register file, a sparse
// paged data memory, and a program counter. It is the functional tier
// of the two-tier frontend — it computes what the program does; the
// pipeline decides how long it takes.
type Machine struct {
	prog   *Program
	pc     uint32
	regs   [32]uint32
	pages  map[uint32][]byte
	halted bool
	steps  uint64
}

// Retired describes one architecturally executed instruction, with the
// dynamic facts (outcome, target, effective address) the trace mapper
// needs.
type Retired struct {
	PC     uint32
	D      Decoded
	Taken  bool   // control flow: did it leave the fall-through path
	Target uint32 // control flow: the taken-path target address
	Addr   uint32 // memory: the effective byte address
	Halt   bool
}

// NewMachine loads p and returns a machine ready to execute from
// TextBase.
func NewMachine(p *Program) (*Machine, error) {
	if len(p.Text) == 0 {
		return nil, fmt.Errorf("rv32: program %q has no text", p.Name)
	}
	m := &Machine{prog: p, pc: TextBase, pages: map[uint32][]byte{}}
	for r, v := range p.Init {
		if r == 0 && v != 0 {
			return nil, fmt.Errorf("rv32: program %q initialises x0 to %#x", p.Name, v)
		}
		if r < 0 || r > 31 {
			return nil, fmt.Errorf("rv32: program %q initialises register x%d", p.Name, r)
		}
		m.regs[r] = v
	}
	m.regs[0] = 0
	for _, seg := range p.Data {
		if seg.Addr < minAddr {
			return nil, fmt.Errorf("rv32: program %q: data segment at %#x below %#x", p.Name, seg.Addr, minAddr)
		}
		for i, b := range seg.Data {
			m.storeByte(seg.Addr+uint32(i), b)
		}
	}
	return m, nil
}

// Halted reports whether the program executed EBREAK.
func (m *Machine) Halted() bool { return m.halted }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// Reg returns the current value of register x{r}.
func (m *Machine) Reg(r int) uint32 { return m.regs[r] }

// page returns the backing page for addr, allocating zeroed pages on
// first touch (program memory is zero-initialised).
func (m *Machine) page(addr uint32) []byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	return p
}

func (m *Machine) storeByte(addr uint32, b byte) {
	m.page(addr)[addr&(pageSize-1)] = b
}

func (m *Machine) loadByte(addr uint32) byte {
	return m.page(addr)[addr&(pageSize-1)]
}

// ReadWord reads a 32-bit little-endian word; tests use it to check a
// program's architectural results.
func (m *Machine) ReadWord(addr uint32) uint32 {
	return uint32(m.loadByte(addr)) |
		uint32(m.loadByte(addr+1))<<8 |
		uint32(m.loadByte(addr+2))<<16 |
		uint32(m.loadByte(addr+3))<<24
}

func (m *Machine) writeWord(addr uint32, v uint32) {
	m.storeByte(addr, byte(v))
	m.storeByte(addr+1, byte(v>>8))
	m.storeByte(addr+2, byte(v>>16))
	m.storeByte(addr+3, byte(v>>24))
}

func (m *Machine) checkAccess(addr uint32, size uint32, pc uint32) error {
	if addr < minAddr {
		return fmt.Errorf("rv32: %q pc=%#x: access to %#x below %#x", m.prog.Name, pc, addr, minAddr)
	}
	if addr%size != 0 {
		return fmt.Errorf("rv32: %q pc=%#x: misaligned %d-byte access to %#x", m.prog.Name, pc, size, addr)
	}
	return nil
}

// Step executes one instruction. Calling Step on a halted machine is an
// error.
func (m *Machine) Step() (Retired, error) {
	if m.halted {
		return Retired{}, fmt.Errorf("rv32: %q: step after halt", m.prog.Name)
	}
	pc := m.pc
	idx := (pc - TextBase) / 4
	if pc < TextBase || pc%4 != 0 || idx >= uint32(len(m.prog.Text)) {
		return Retired{}, fmt.Errorf("rv32: %q: pc %#x outside text", m.prog.Name, pc)
	}
	d, err := Decode(m.prog.Text[idx])
	if err != nil {
		return Retired{}, fmt.Errorf("rv32: %q pc=%#x: %w", m.prog.Name, pc, err)
	}
	r := Retired{PC: pc, D: d}
	next := pc + 4
	rs1, rs2 := m.regs[d.Rs1], m.regs[d.Rs2]
	wr := func(v uint32) {
		if d.Rd != 0 {
			m.regs[d.Rd] = v
		}
	}
	switch d.Op {
	case LUI:
		wr(uint32(d.Imm))
	case AUIPC:
		wr(pc + uint32(d.Imm))
	case JAL:
		r.Taken = true
		r.Target = pc + uint32(d.Imm)
		wr(pc + 4)
		next = r.Target
	case JALR:
		r.Taken = true
		r.Target = (rs1 + uint32(d.Imm)) &^ 1
		wr(pc + 4)
		next = r.Target
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		r.Target = pc + uint32(d.Imm)
		switch d.Op {
		case BEQ:
			r.Taken = rs1 == rs2
		case BNE:
			r.Taken = rs1 != rs2
		case BLT:
			r.Taken = int32(rs1) < int32(rs2)
		case BGE:
			r.Taken = int32(rs1) >= int32(rs2)
		case BLTU:
			r.Taken = rs1 < rs2
		case BGEU:
			r.Taken = rs1 >= rs2
		}
		if r.Taken {
			next = r.Target
		}
	case LB, LH, LW, LBU, LHU:
		addr := rs1 + uint32(d.Imm)
		size := uint32(1)
		switch d.Op {
		case LH, LHU:
			size = 2
		case LW:
			size = 4
		}
		if err := m.checkAccess(addr, size, pc); err != nil {
			return Retired{}, err
		}
		r.Addr = addr
		var v uint32
		switch d.Op {
		case LB:
			v = uint32(int32(int8(m.loadByte(addr))))
		case LBU:
			v = uint32(m.loadByte(addr))
		case LH:
			v = uint32(int32(int16(uint16(m.loadByte(addr)) | uint16(m.loadByte(addr+1))<<8)))
		case LHU:
			v = uint32(m.loadByte(addr)) | uint32(m.loadByte(addr+1))<<8
		case LW:
			v = m.ReadWord(addr)
		}
		wr(v)
	case SB, SH, SW:
		addr := rs1 + uint32(d.Imm)
		size := uint32(1)
		switch d.Op {
		case SH:
			size = 2
		case SW:
			size = 4
		}
		if err := m.checkAccess(addr, size, pc); err != nil {
			return Retired{}, err
		}
		r.Addr = addr
		switch d.Op {
		case SB:
			m.storeByte(addr, byte(rs2))
		case SH:
			m.storeByte(addr, byte(rs2))
			m.storeByte(addr+1, byte(rs2>>8))
		case SW:
			m.writeWord(addr, rs2)
		}
	case ADDI:
		wr(rs1 + uint32(d.Imm))
	case SLTI:
		wr(boolVal(int32(rs1) < d.Imm))
	case SLTIU:
		wr(boolVal(rs1 < uint32(d.Imm)))
	case XORI:
		wr(rs1 ^ uint32(d.Imm))
	case ORI:
		wr(rs1 | uint32(d.Imm))
	case ANDI:
		wr(rs1 & uint32(d.Imm))
	case SLLI:
		wr(rs1 << uint32(d.Imm))
	case SRLI:
		wr(rs1 >> uint32(d.Imm))
	case SRAI:
		wr(uint32(int32(rs1) >> uint32(d.Imm)))
	case ADD:
		wr(rs1 + rs2)
	case SUB:
		wr(rs1 - rs2)
	case SLL:
		wr(rs1 << (rs2 & 31))
	case SLT:
		wr(boolVal(int32(rs1) < int32(rs2)))
	case SLTU:
		wr(boolVal(rs1 < rs2))
	case XOR:
		wr(rs1 ^ rs2)
	case SRL:
		wr(rs1 >> (rs2 & 31))
	case SRA:
		wr(uint32(int32(rs1) >> (rs2 & 31)))
	case OR:
		wr(rs1 | rs2)
	case AND:
		wr(rs1 & rs2)
	case MUL:
		wr(rs1 * rs2)
	case MULH:
		wr(uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32))
	case MULHSU:
		wr(uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32))
	case MULHU:
		wr(uint32(uint64(rs1) * uint64(rs2) >> 32))
	case DIV:
		switch {
		case rs2 == 0:
			wr(^uint32(0))
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			wr(rs1)
		default:
			wr(uint32(int32(rs1) / int32(rs2)))
		}
	case DIVU:
		if rs2 == 0 {
			wr(^uint32(0))
		} else {
			wr(rs1 / rs2)
		}
	case REM:
		switch {
		case rs2 == 0:
			wr(rs1)
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			wr(0)
		default:
			wr(uint32(int32(rs1) % int32(rs2)))
		}
	case REMU:
		if rs2 == 0 {
			wr(rs1)
		} else {
			wr(rs1 % rs2)
		}
	case EBREAK:
		r.Halt = true
		m.halted = true
	case ECALL:
		return Retired{}, fmt.Errorf("rv32: %q pc=%#x: ecall is not supported", m.prog.Name, pc)
	default:
		return Retired{}, fmt.Errorf("rv32: %q pc=%#x: unexecutable op %v", m.prog.Name, pc, d.Op)
	}
	m.pc = next
	m.steps++
	return r, nil
}

func boolVal(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Execute runs p to completion (EBREAK), bounded by maxSteps, and
// returns the final machine state; program correctness tests inspect it.
func Execute(p *Program, maxSteps uint64) (*Machine, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	for !m.halted {
		if m.steps >= maxSteps {
			return nil, fmt.Errorf("rv32: %q did not halt within %d steps", p.Name, maxSteps)
		}
		if _, err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m, nil
}
