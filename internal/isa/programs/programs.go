// Package programs ships the classic benchmark kernels available as
// real RV32 program workloads, and the registry the trace layer
// validates program recipes against. Each program is assembled Go-side
// (see internal/isa/rv32), parameterised by an input size and a data
// seed, and functionally executed into the pipeline's instruction
// stream at materialisation time.
//
// Programs must terminate (EBREAK) for every valid (input, seed) pair:
// the dynamic instruction count is a property of the program, so the
// trace layer derives trace length from execution instead of taking a
// budget guess from the caller. InputFor inverts that relationship
// approximately — it suggests the input size whose dynamic length lands
// near a committed-instruction budget, which the experiment suites use
// to keep program sweeps comparable to synthetic ones.
package programs

import (
	"fmt"
	"sort"

	"repro/internal/isa/rv32"
)

// Spec describes one registered program.
type Spec struct {
	Name string
	// Desc is a one-line description for CLI listings.
	Desc string
	// MaxInput bounds the input size so the dynamic stream stays under
	// the trace layer's materialisation cap.
	MaxInput int
	// InputFor suggests an input size whose dynamic instruction count
	// is near budget (approximate, clamped to [1, MaxInput]).
	InputFor func(budget uint64) int
	// Build assembles the program for one (input, seed) pair.
	Build func(input int, seed uint64) (*rv32.Program, error)
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("programs: duplicate program %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered program name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// clampInput applies a spec's bounds to an InputFor suggestion.
func clampInput(v, max int) int {
	if v < 1 {
		return 1
	}
	if v > max {
		return max
	}
	return v
}

// splitmix64 is the same tiny PRNG the synthetic generators use; data
// layouts are pure functions of the recipe seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// words32 renders ws as a little-endian byte segment.
func words32(addr uint32, ws []uint32) rv32.Segment {
	b := make([]byte, 4*len(ws))
	for i, w := range ws {
		b[4*i] = byte(w)
		b[4*i+1] = byte(w >> 8)
		b[4*i+2] = byte(w >> 16)
		b[4*i+3] = byte(w >> 24)
	}
	return rv32.Segment{Addr: addr, Data: b}
}
