package faults

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// transientMarker lets error types opt in to retryability without this
// package knowing about them (service.StatusError stays in the service
// package; injected faults and wrapped stream errors mark themselves).
type transientMarker interface{ TransientFault() bool }

// RetryAfterHinter lets an error carry the server's Retry-After value
// across package boundaries; Retrier prefers the hint over its own
// backoff schedule.
type RetryAfterHinter interface{ RetryAfterHint() (time.Duration, bool) }

type transientError struct{ err error }

func (e *transientError) Error() string        { return e.err.Error() }
func (e *transientError) Unwrap() error        { return e.err }
func (e *transientError) TransientFault() bool { return true }

// MarkTransient wraps err so Transient reports it retryable. Use it
// when context proves a retry is safe (e.g. an event-stream decode
// error, healed by reconnecting and replaying history).
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Transient reports whether err looks like a transport-level fault that
// a retry can plausibly heal: network timeouts and connection errors,
// truncated reads, and anything marked via MarkTransient or a
// TransientFault method. Context cancellation is never transient — the
// caller gave up, retrying would fight them.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var tm transientMarker
	if errors.As(err, &tm) {
		return tm.TransientFault()
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	return false
}

// Retrier retries an operation with capped, jittered exponential
// backoff. When a failed attempt's error carries a Retry-After hint
// (RetryAfterHinter), the hint replaces the computed backoff — the
// server knows its own recovery time better than our schedule does.
// The zero value is usable; all fields are optional. A Retrier is safe
// for concurrent use.
type Retrier struct {
	// MaxAttempts bounds total attempts (first try included). <=0 means 3.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule (doubled per retry).
	// <=0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff. <=0 means 2s. Retry-After
	// hints bypass this cap (bounded by a 30s sanity ceiling).
	MaxDelay time.Duration
	// Retryable classifies errors; nil means Transient.
	Retryable func(error) bool
	// OnRetry, if set, observes each retry before its sleep: the attempt
	// number that just failed (1-based), its error, and the chosen
	// delay. Used for counters (e.g. load-gen backpressure accounting).
	OnRetry func(attempt int, err error, delay time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

// hintCeiling bounds how long a server-sent Retry-After can make us
// sleep, so a hostile or buggy header can't park a client for an hour.
const hintCeiling = 30 * time.Second

// Do runs op, retrying retryable failures until success, attempt
// exhaustion, or context cancellation. It returns the last attempt's
// error (or ctx.Err() if cancelled while backing off).
func (r *Retrier) Do(ctx context.Context, op func() error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	retryable := r.Retryable
	if retryable == nil {
		retryable = Transient
	}
	var err error
	for attempt := 1; ; attempt++ {
		if ctx != nil && ctx.Err() != nil {
			if err != nil {
				return err
			}
			return ctx.Err()
		}
		err = op()
		if err == nil || attempt >= attempts || !retryable(err) {
			return err
		}
		delay := r.delay(attempt, err)
		if r.OnRetry != nil {
			r.OnRetry(attempt, err, delay)
		}
		if ctx == nil {
			time.Sleep(delay)
			continue
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// delay picks the sleep before the next attempt: the error's
// Retry-After hint when present, otherwise jittered exponential
// backoff (full jitter over (0, base<<n], capped).
func (r *Retrier) delay(attempt int, err error) time.Duration {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		if d, ok := h.RetryAfterHint(); ok && d > 0 {
			if d > hintCeiling {
				d = hintCeiling
			}
			return d
		}
	}
	base := r.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	r.mu.Lock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	jittered := time.Duration(r.rng.Int63n(int64(d))) + 1
	r.mu.Unlock()
	return jittered
}
